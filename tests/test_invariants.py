"""Cross-cutting invariants: slice closure, functional equivalence,
determinism, and no-harm guardrails over the whole benchmark suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import TERMINATED_SELF, WILDCARD, DependenceChain
from repro.core.chain_cache import ChainCache
from repro.core.config import BranchRunaheadConfig, mini
from repro.core.dce import DependenceChainEngine
from repro.core.local_rename import local_rename
from repro.core.prediction_queue import PredictionQueueFile
from repro.emulator.machine import execute_uop
from repro.emulator.memory import Memory
from repro.isa import uop as U
from repro.isa.registers import NUM_ARCH_REGS
from repro.isa.uop import Uop
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.port import PortTracker
from repro.sim.simulator import simulate
from repro.workloads import suite

#: A representative slice of the suite, kept small for test runtime.
SAMPLE_BENCHMARKS = ["leela_17", "mcf_17", "gobmk_06", "cc", "sssp"]


@pytest.fixture(scope="module")
def mini_results():
    return {
        name: simulate(suite.load(name), instructions=8_000, warmup=5_000,
                       br_config=mini())
        for name in SAMPLE_BENCHMARKS
    }


class TestChainSliceClosure:
    def test_every_source_is_live_in_or_defined_earlier(self, mini_results):
        """A dependence chain must be dataflow-closed: each uop's sources
        are live-ins or destinations of older chain uops."""
        for name, result in mini_results.items():
            for chain in result.runahead.chain_cache.chains():
                defined = set(chain.live_ins)
                for op in chain.exec_uops:
                    for src in op.src_regs:
                        assert src in defined, (name, chain, op)
                    defined.update(op.dst_regs)

    def test_live_outs_cover_all_definitions(self, mini_results):
        for result in mini_results.values():
            for chain in result.runahead.chain_cache.chains():
                defined = set()
                for op in chain.exec_uops:
                    defined.update(op.dst_regs)
                assert defined == set(chain.live_outs)

    def test_chain_ends_with_its_branch(self, mini_results):
        for result in mini_results.values():
            for chain in result.runahead.chain_cache.chains():
                last = chain.exec_uops[-1]
                assert last.is_cond_branch
                assert last.pc == chain.branch_pc

    def test_timed_uops_within_limit(self, mini_results):
        for result in mini_results.values():
            config = result.runahead.config
            for chain in result.runahead.chain_cache.chains():
                assert 1 <= chain.length <= config.max_chain_length


class TestDceFunctionalEquivalence:
    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=1, max_value=9),
           st.integers(min_value=-40, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_chain_outcome_matches_plain_execution(self, start_value,
                                                   increment, threshold):
        """The DCE's timed/eliminated execution must produce exactly the
        outcome plain sequential execution of the slice produces."""
        uops = [
            Uop(U.ADDI, dst=1, srcs=(1,), imm=increment),
            Uop(U.MOV, dst=2, srcs=(1,)),          # eliminated by rename
            Uop(U.CMPI, srcs=(2,), imm=threshold),
            Uop(U.BR, cond=U.LT, target=0),
        ]
        for index, op in enumerate(uops):
            op.pc = 0x60 - len(uops) + 1 + index
        rename = local_rename(uops, {})
        chain = DependenceChain(
            branch_pc=0x60, branch_uop=uops[-1], tag=(0x60, WILDCARD),
            exec_uops=uops, timed_flags=rename.timed_flags,
            live_ins=rename.live_ins, live_outs=rename.live_outs,
            pair_map={}, terminated_by=TERMINATED_SELF)

        config = BranchRunaheadConfig()
        engine = DependenceChainEngine(
            config, ChainCache(8),
            PredictionQueueFile(4, 16), MemoryHierarchy(), Memory(),
            PortTracker())
        engine.chain_cache.install(chain)
        regs = [0] * NUM_ARCH_REGS
        regs[1] = start_value
        engine.sync(regs, cycle=0)
        engine.trigger(0x60, True, cycle=0)
        queue = engine.queues.get(0x60)
        _, dce_outcome = queue.consume(10**9)

        # plain execution of the full slice
        plain = [0] * NUM_ARCH_REGS
        plain[1] = start_value
        memory = Memory()
        taken = False
        for op in uops:
            taken = execute_uop(op, plain, memory).taken
        assert dce_outcome == taken


class TestDeterminism:
    @pytest.mark.parametrize("name", ["leela_17", "sssp"])
    def test_simulation_fully_deterministic(self, name):
        first = simulate(suite.load(name), instructions=5_000, warmup=3_000,
                         br_config=mini())
        second = simulate(suite.load(name), instructions=5_000, warmup=3_000,
                          br_config=mini())
        assert first.mpki == second.mpki
        assert first.core.cycles == second.core.cycles
        assert first.runahead.dce.stats.uops_executed == \
            second.runahead.dce.stats.uops_executed


class TestNoHarmGuardrail:
    @pytest.mark.parametrize("name", suite.BENCHMARK_NAMES)
    def test_br_never_catastrophically_worse(self, name):
        """Throttling + divergence handling must bound the damage on any
        workload: MPKI within 15% of baseline, always."""
        baseline = simulate(suite.load(name), instructions=6_000,
                            warmup=4_000)
        runahead = simulate(suite.load(name), instructions=6_000,
                            warmup=4_000, br_config=mini())
        assert runahead.mpki <= baseline.mpki * 1.15 + 0.5, name


class TestRecoveryFromBrokenChains:
    def test_divergences_detected_and_bounded(self):
        """Chains reading mutated memory diverge; the system must detect
        the divergences and keep overall accuracy from collapsing."""
        import numpy as np
        from repro.isa.program import ProgramBuilder
        rng = np.random.default_rng(4)
        b = ProgramBuilder("mutating")
        data = b.data("data", [int(v) for v in rng.integers(0, 2, 2048)])
        datar, i, v = b.regs("data", "i", "v")
        b.movi(datar, data)
        b.label("loop")
        b.muli(i, i, 5)
        b.addi(i, i, 7)
        b.andi(i, i, 2047)
        b.ld(v, base=datar, index=i)
        b.cmpi(v, 1)
        b.br("ne", "skip")
        b.xori(v, v, 1)
        b.st(v, base=datar, index=i)   # flip the bit chains just read
        b.label("skip")
        b.jmp("loop")
        program = b.build()
        baseline = simulate(program, instructions=8_000, warmup=5_000)
        result = simulate(program, instructions=8_000, warmup=5_000,
                          br_config=mini())
        assert result.mpki <= baseline.mpki * 1.15 + 0.5

    def test_loop_boundary_divergence_detected(self):
        """leela's chains structurally diverge every loop exit (§3: 'until
        i reaches 8'); the monitor must catch and resynchronize them."""
        result = simulate(suite.load("leela_17"), instructions=8_000,
                          warmup=5_000, br_config=mini())
        stats = result.runahead.stats
        assert stats.divergences > 0
        assert stats.resyncs >= stats.divergences * 0.5
