"""Differential tests for the batched multi-predictor replay path.

The contract (DESIGN.md §6a.4): for any set of predictor-only lanes,
:func:`repro.sim.predictor_replay.replay_mpki_batch` — and the Session
grouping built on it — must produce results **bit-identical** to scalar
:func:`~repro.sim.predictor_replay.replay_mpki` calls of the same cells:
same MPKI, same per-PC breakdowns, same warmup semantics, same payload
digests.  The pure-``array`` backend is the reference the numpy kernels
are pinned against; both are pinned against the scalar path here.
"""

import json

import pytest

from repro import config as repro_config
from repro.cli import main as cli_main
from repro.isa.program import ProgramBuilder
from repro.observe.journal import read_journal
from repro.predictors.batched import (
    BACKEND_ENV,
    MIN_PERCEPTRON_LANES,
    _lockstep,
    replay_lanes,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.registry import PREDICTORS, make_predictor
from repro.session import BATCH_REPLAY_ENV, Session, batch_replay_enabled
from repro.sim import experiments
from repro.sim.bench import batch_replay_predictors, payload_digest
from repro.sim.branch_events import (
    BranchColumns,
    extract_columns,
    read_columns,
    write_columns,
)
from repro.sim.predictor_replay import (
    load_branch_columns,
    replay_mpki,
    replay_mpki_batch,
)
from repro.sim.trace_cache import TraceCache, program_fingerprint
from repro.workloads import suite

try:
    import numpy  # noqa: F401
    BACKENDS = ["pure", "numpy"]
except ImportError:  # CI's no-numpy leg
    BACKENDS = ["pure"]

REGION = dict(instructions=1_200, warmup=600)


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, request.param)
    return request.param


def synthetic_stream(events=4_000, pcs=48, seed=0x2545F491):
    """A deterministic pseudo-random branch stream (LCG, no RNG imports)."""
    state = seed
    pc_column, taken_column = [], []
    for _ in range(events):
        state = (state * 6364136223846793005 + 1442695040888963407) \
            % (1 << 64)
        pc_column.append(0x400 + (state >> 33) % pcs * 4)
        taken_column.append((state >> 17) & 1)
    return pc_column, taken_column


def mixed_lane_factories():
    """Lane set spanning every kernel family plus the lockstep fallback."""
    lanes = [lambda: BimodalPredictor(size_log2=4),
             lambda: BimodalPredictor(size_log2=8),
             lambda: BimodalPredictor(size_log2=6, counter_bits=3),
             lambda: GSharePredictor(size_log2=4, history_bits=3),
             lambda: GSharePredictor(size_log2=8, history_bits=8),
             lambda: GSharePredictor(size_log2=6, history_bits=12),
             lambda: make_predictor("tage64")]
    lanes += [lambda bits=bits: PerceptronPredictor(history_bits=bits)
              for bits in (8, 12, 16)][:MIN_PERCEPTRON_LANES]
    return lanes


def halting_countdown(iterations=40):
    b = ProgramBuilder(name="countdown")
    i, = b.regs("i")
    b.movi(i, iterations)
    b.label("top")
    b.addi(i, i, -1)
    b.cmpi(i, 0)
    b.br("ne", "top")
    b.halt()
    return b.build()


def branch_fields(core):
    return {
        "instructions": core.instructions,
        "cond_branches": core.cond_branches,
        "taken_branches": core.taken_branches,
        "mispredicts": core.mispredicts,
        "baseline_mispredicts": core.baseline_mispredicts,
        "warmup_truncated": core.warmup_truncated,
        "mpki": core.mpki,
        "branch_counts": dict(core.branch_counts),
        "branch_mispredicts": dict(core.branch_mispredicts),
    }


def session(**overrides):
    return Session(repro_config.current_config().replace(
        instructions=REGION["instructions"], warmup=REGION["warmup"],
        **overrides))


class TestReplayLanesDifferential:
    def test_mixed_lanes_match_lockstep(self, backend):
        pcs, takens = synthetic_stream()
        factories = mixed_lane_factories()
        batch = replay_lanes([make() for make in factories],
                             pcs, takens, split=800)
        reference = _lockstep([make() for make in factories],
                              pcs, takens, split=800)
        assert batch == reference

    def test_trained_lane_falls_back_to_instance_state(self, backend):
        # a lane with prior history is not pristine: the batch must keep
        # driving the instance's own tables, bit-for-bit
        pcs, takens = synthetic_stream(events=1_000)
        trained, twin = BimodalPredictor(size_log2=6), \
            BimodalPredictor(size_log2=6)
        for predictor in (trained, twin):
            for pc in range(0, 256, 4):
                predictor.observe(pc, True)
        batch = replay_lanes([trained], pcs, takens, split=100)
        reference = _lockstep([twin], pcs, takens, split=100)
        assert batch == reference

    def test_subclass_falls_back_to_instance_behaviour(self, backend):
        class Contrarian(GSharePredictor):
            def predict(self, pc):
                return not super().predict(pc)

        pcs, takens = synthetic_stream(events=1_000)
        batch = replay_lanes(
            [Contrarian(size_log2=6, history_bits=6)], pcs, takens, 200)
        reference = _lockstep(
            [Contrarian(size_log2=6, history_bits=6)], pcs, takens, 200)
        assert batch == reference

    def test_equivalent_lanes_share_result_object(self):
        if "numpy" not in BACKENDS:
            pytest.skip("numpy kernels not available")
        # two gshare geometries inducing the same event partition must be
        # deduped to one scan and hand back the same list object
        pcs = [0x400] * 600  # one static PC: partition is history-only
        takens = [(i * 7) & 1 for i in range(600)]
        lanes = [GSharePredictor(size_log2=10, history_bits=4),
                 GSharePredictor(size_log2=12, history_bits=4)]
        batch = replay_lanes(lanes, pcs, takens, split=100)
        assert batch[0] is batch[1]
        reference = _lockstep(
            [GSharePredictor(size_log2=10, history_bits=4),
             GSharePredictor(size_log2=12, history_bits=4)],
            pcs, takens, split=100)
        assert batch == reference

    def test_empty_stream(self, backend):
        assert replay_lanes([BimodalPredictor()], [], [], 0) == [[]]


class TestBatchIdentity:
    @pytest.mark.parametrize("name", sorted(PREDICTORS.names()))
    def test_every_registered_predictor(self, name, backend):
        program = suite.load("sjeng_06")
        scalar = replay_mpki(program, make_predictor(name),
                             trace_cache=TraceCache(), **REGION)
        batch, = replay_mpki_batch(program, [name],
                                   trace_cache=TraceCache(), **REGION)
        assert branch_fields(batch.core) == branch_fields(scalar.core)
        assert payload_digest(batch.to_dict()) == \
            payload_digest(scalar.to_dict())

    def test_bench_lane_set_matches_scalar(self, backend):
        program = suite.load("mcf_17")
        cache = TraceCache()
        scalars = [replay_mpki(program, predictor, trace_cache=cache,
                               **REGION)
                   for predictor in batch_replay_predictors()]
        batches = replay_mpki_batch(program, batch_replay_predictors(),
                                    trace_cache=cache, **REGION)
        assert len(batches) == len(scalars)
        for scalar, batch in zip(scalars, batches):
            assert payload_digest(batch.to_dict()) == \
                payload_digest(scalar.to_dict())

    def test_duplicate_lanes_dedupe_stat(self, backend):
        # equivalent lanes replay once in the kernels; the count is
        # reported under host.batch (host scope, so the digest the drift
        # gate compares stays identical to the scalar document)
        program = suite.load("sjeng_06")
        results = replay_mpki_batch(program, ["tage64", "tage64"],
                                    trace_cache=TraceCache(),
                                    min_lanes=1, **REGION)
        deduped = {result.to_dict()["stats"]["host"]["batch"]
                   ["lanes_deduped"] for result in results}
        assert deduped == {1 if backend == "numpy" else 0}
        scalar = replay_mpki(program, make_predictor("tage64"),
                             trace_cache=TraceCache(), **REGION)
        for result in results:
            assert payload_digest(result.to_dict()) == \
                payload_digest(scalar.to_dict())

    def test_string_lanes_resolve_via_registry(self, backend):
        program = suite.load("sjeng_06")
        by_name, by_instance = replay_mpki_batch(
            program, ["bimodal", BimodalPredictor()],
            trace_cache=TraceCache(), **REGION)
        assert payload_digest(by_name.to_dict()) == \
            payload_digest(by_instance.to_dict())


class TestWarmupBoundary:
    def batch_vs_scalar(self, program, warmup, instructions=10_000):
        scalar = replay_mpki(program, BimodalPredictor(size_log2=6),
                             instructions=instructions, warmup=warmup,
                             trace_cache=TraceCache())
        batch, = replay_mpki_batch(program,
                                   [BimodalPredictor(size_log2=6)],
                                   instructions=instructions, warmup=warmup,
                                   trace_cache=TraceCache())
        assert branch_fields(batch.core) == branch_fields(scalar.core)
        return batch

    def test_stream_ends_exactly_at_boundary(self, backend):
        # countdown(40) commits exactly 121 records; warmup == stream
        # length means nothing is measured and the flag must be set
        program = halting_countdown(40)
        count = load_branch_columns(program, 0, 10_000).record_count
        batch = self.batch_vs_scalar(program, warmup=count)
        assert batch.core.warmup_truncated
        assert batch.core.instructions == count  # whole run reported

    def test_one_record_past_boundary_is_measured(self, backend):
        program = halting_countdown(40)
        count = load_branch_columns(program, 0, 10_000).record_count
        batch = self.batch_vs_scalar(program, warmup=count - 1)
        assert not batch.core.warmup_truncated
        assert batch.core.instructions == 1

    def test_boundary_on_a_branch_event(self, backend):
        # a branch sitting exactly at the warmup boundary is measured
        program = halting_countdown(40)
        columns = load_branch_columns(program, 0, 10_000)
        boundary = columns.indices[len(columns) // 2]
        batch = self.batch_vs_scalar(program, warmup=int(boundary))
        assert not batch.core.warmup_truncated

    def test_zero_warmup_measures_everything(self, backend):
        program = halting_countdown(40)
        columns = load_branch_columns(program, 0, 10_000)
        batch = self.batch_vs_scalar(program, warmup=0)
        assert batch.core.cond_branches == len(columns)
        assert not batch.core.warmup_truncated


class TestBranchEventsFormat:
    def build_columns(self):
        program = halting_countdown(25)
        return program, load_branch_columns(program, 0, 10_000)

    def test_round_trip(self, tmp_path):
        program, columns = self.build_columns()
        fingerprint = program_fingerprint(program)
        path = str(tmp_path / "region.events")
        assert write_columns(path, columns, fingerprint)
        loaded = read_columns(open(path, "rb").read(), fingerprint)
        assert loaded.indices == columns.indices
        assert loaded.pcs == columns.pcs
        assert loaded.takens == columns.takens
        assert loaded.record_count == columns.record_count
        assert loaded.events() == columns.events()

    def test_events_view_memoized(self):
        _, columns = self.build_columns()
        assert columns.events() is columns.events()

    @pytest.mark.parametrize("damage", [
        "magic", "version", "payload", "truncate", "fingerprint", "taken"])
    def test_damage_raises_value_error(self, tmp_path, damage):
        program, columns = self.build_columns()
        fingerprint = program_fingerprint(program)
        path = str(tmp_path / "region.events")
        assert write_columns(path, columns, fingerprint)
        blob = bytearray(open(path, "rb").read())
        expected_fingerprint = fingerprint
        if damage == "magic":
            blob[0] ^= 0xFF
        elif damage == "version":
            blob[4] ^= 0xFF
        elif damage == "payload":
            blob[-1] ^= 0xFF
        elif damage == "truncate":
            blob = blob[:len(blob) - 3]
        elif damage == "fingerprint":
            expected_fingerprint = "00" * 32
        elif damage == "taken":
            # flip a taken byte to 2 and re-sign so only the value check
            # can reject it
            import hashlib
            blob[-1] = 2
            blob[6:38] = hashlib.sha256(blob[38:]).digest()
        with pytest.raises(ValueError):
            read_columns(bytes(blob), expected_fingerprint)

    def test_write_failure_returns_false(self, tmp_path):
        program, columns = self.build_columns()
        missing = str(tmp_path / "no" / "such" / "dir" / "x.events")
        assert write_columns(missing, columns,
                             program_fingerprint(program)) is False

    def test_extract_columns_shape(self):
        _, columns = self.build_columns()
        rebuilt = extract_columns(iter([]), record_count=7)
        assert isinstance(rebuilt, BranchColumns)
        assert len(rebuilt) == 0 and rebuilt.record_count == 7
        assert len(columns.indices) == len(columns.pcs) \
            == len(columns.takens)


class TestEventSidecar:
    def test_spill_and_reload_without_pickle(self, tmp_path):
        program = suite.load("sjeng_06")
        writer = TraceCache(disk_dir=str(tmp_path))
        first = load_branch_columns(program, 0, 1_800, trace_cache=writer)
        assert writer.event_spills == 1
        assert list(tmp_path.glob("*.events"))
        # a fresh cache (new process, same disk dir) resolves the region
        # from the sidecar alone
        reader = TraceCache(disk_dir=str(tmp_path))
        loaded = load_branch_columns(program, 0, 1_800, trace_cache=reader)
        assert reader.event_disk_hits == 1
        assert reader.disk_hits == 0  # the pickle was never touched
        assert loaded.events() == first.events()

    def test_columns_memoized_across_lookups(self, tmp_path):
        program = suite.load("sjeng_06")
        cache = TraceCache(disk_dir=str(tmp_path))
        load_branch_columns(program, 0, 1_800, trace_cache=cache)
        reader = TraceCache(disk_dir=str(tmp_path))
        first = reader.branch_columns(program, 0, 1_800)
        second = reader.branch_columns(program, 0, 1_800)
        assert first is second  # memoized, not re-read from disk
        assert first.events() is second.events()
        assert reader.event_disk_hits == 1

    def test_entry_branch_events_memoized(self):
        program = suite.load("sjeng_06")
        cache = TraceCache()
        load_branch_columns(program, 0, 1_800, trace_cache=cache)
        entry = cache.lookup(program, 0, 1_800, count=False)
        assert entry.branch_events is entry.branch_events
        assert entry.branch_events is entry.branch_columns.events()

    def test_corrupt_sidecar_falls_back_to_trace_entry(self, tmp_path):
        program = suite.load("sjeng_06")
        writer = TraceCache(disk_dir=str(tmp_path))
        good = load_branch_columns(program, 0, 1_800, trace_cache=writer)
        sidecar, = tmp_path.glob("*.events")
        sidecar.write_bytes(b"RPBEgarbage")
        reader = TraceCache(disk_dir=str(tmp_path))
        loaded = load_branch_columns(program, 0, 1_800, trace_cache=reader)
        assert loaded.events() == good.events()
        assert reader.event_disk_hits == 0
        assert reader.disk_hits == 1  # served by the full .trace entry


class TestSessionBatching:
    CELLS = [("sjeng_06", "bimodal"), ("sjeng_06", "gshare"),
             ("sjeng_06", "spec:tage64+none"), ("mcf_17", "bimodal"),
             ("mcf_17", "gshare")]

    def test_rows_identical_to_scalar_path(self, monkeypatch):
        batched = session().run_cells(self.CELLS, outputs="mpki")
        monkeypatch.setenv(BATCH_REPLAY_ENV, "0")
        assert not batch_replay_enabled()
        scalar = session().run_cells(self.CELLS, outputs="mpki")
        assert [(row["benchmark"], row["variant"]) for row in batched] \
            == list(self.CELLS)
        for batch_row, scalar_row in zip(batched, scalar):
            assert payload_digest(batch_row["payload"]) \
                == payload_digest(scalar_row["payload"])

    def test_batch_size_marker_and_shared_region(self):
        rows = session().run_cells(self.CELLS, outputs="mpki")
        assert all(row["cell"]["batch_size"] == 3 for row in rows[:3])
        assert all(row["cell"]["batch_size"] == 2 for row in rows[3:])

    def test_mixed_group_keeps_full_timing_cells_scalar(self):
        cells = [("sjeng_06", "bimodal"), ("sjeng_06", "mini"),
                 ("sjeng_06", "gshare")]
        rows = session().run_cells(cells, outputs="mpki")
        assert [row["variant"] for row in rows] == \
            ["bimodal", "mini", "gshare"]
        assert rows[1]["payload"]["branch_runahead"] is True
        assert "batch_size" not in rows[1]["cell"]

    def test_batched_results_populate_scalar_cache(self):
        sess = session()
        sess.run_cells(self.CELLS, outputs="mpki")
        hits_before = sess.result_cache_hits
        sess.run("sjeng_06", "gshare", outputs="mpki")
        assert sess.result_cache_hits == hits_before + 1

    def test_parallel_jobs_match_serial(self):
        serial = session().run_cells(self.CELLS, outputs="mpki")
        parallel = session(jobs=2).run_cells(self.CELLS, outputs="mpki",
                                             jobs=2)
        for left, right in zip(serial, parallel):
            assert payload_digest(left["payload"]) \
                == payload_digest(right["payload"])

    def test_run_batch_cache_interop_and_rejection(self):
        sess = session()
        first = sess.run_batch("sjeng_06", ["bimodal", "gshare"])
        assert [hit for _, hit in first] == [False, False]
        again = sess.run_batch("sjeng_06", ["bimodal", "gshare"])
        assert [hit for _, hit in again] == [True, True]
        assert [result for result, _ in again] \
            == [result for result, _ in first]
        with pytest.raises(ValueError):
            sess.run_batch("sjeng_06", ["mini"])

    def test_journal_records_one_row_per_cell(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        session().run_cells(self.CELLS, outputs="mpki", journal=path)
        journal = read_journal(path)
        finished = [event for event in journal["events"]
                    if event["event"] == "cell_finished"]
        assert len(finished) == len(self.CELLS)
        assert journal["complete"]


class TestOrderFrom:
    CELLS = [("sjeng_06", "bimodal"), ("mcf_17", "bimodal"),
             ("sjeng_06", "gshare")]

    def test_rows_stay_in_input_order(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        baseline = session().run_cells(self.CELLS, outputs="mpki",
                                       journal=path)
        reordered = session().run_cells(self.CELLS, outputs="mpki",
                                        order_from=path)
        assert [(row["benchmark"], row["variant"]) for row in reordered] \
            == [(row["benchmark"], row["variant"]) for row in baseline] \
            == list(self.CELLS)

    def test_unreadable_journal_falls_back_to_plan_order(self, tmp_path):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not a journal\n")
        for path in (str(garbage), str(tmp_path / "missing.jsonl")):
            rows = session().run_cells(self.CELLS, outputs="mpki",
                                       order_from=path)
            assert [(row["benchmark"], row["variant"]) for row in rows] \
                == list(self.CELLS)


class TestComparePredictorsCli:
    def test_sweep_table_and_json(self, capsys):
        args = ["compare", "sjeng_06", "--predictors", "bimodal", "gshare",
                "--instructions", "1200", "--warmup", "600"]
        assert cli_main(args) == 0
        table = capsys.readouterr().out
        assert "bimodal" in table and "gshare" in table
        assert cli_main(args + ["--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["benchmark"] == "sjeng_06"
        assert set(document["mpki"]) == {"bimodal", "gshare"}
        scalar = experiments.run("sjeng_06", "bimodal", outputs="mpki",
                                 instructions=1_200, warmup=600)
        assert document["mpki"]["bimodal"] == pytest.approx(
            scalar.core.mpki)
