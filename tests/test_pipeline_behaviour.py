"""Behavioural tests of pipeline mechanics that the figures depend on."""

import numpy as np
import pytest

from repro.core.config import mini
from repro.emulator.machine import Machine
from repro.isa.program import ProgramBuilder
from repro.memsys.hierarchy import HierarchyConfig
from repro.predictors import BimodalPredictor
from repro.sim.simulator import simulate
from repro.uarch.config import CoreConfig
from repro.uarch.core import CoreModel
from repro.workloads import suite


def run_core(build, instructions=10_000, warmup=5_000, config=None,
             predictor=None):
    b = ProgramBuilder()
    build(b)
    machine = Machine(b.build())
    core = CoreModel(config=config, predictor=predictor)
    return core.run(machine.stream(instructions + warmup), warmup=warmup)


def taken_loop(b):
    """Tight loop of taken branches (stresses fetch-group breaks)."""
    i = b.reg("i")
    b.label("top")
    b.addi(i, i, 1)
    b.cmpi(i, 0)
    b.br("ge", "next")     # always taken (forward, to next pc)
    b.label("next")
    b.jmp("top")


class TestFetchMechanics:
    def test_taken_branches_limit_fetch(self):
        """Taken branches end the fetch group: IPC can't reach width."""
        stats = run_core(taken_loop)
        assert stats.ipc < 2.0

    def test_wider_mispredict_penalty_hurts(self):
        def random_branch(b):
            rng = np.random.default_rng(1)
            data = b.data("bits", [int(v) for v in rng.integers(0, 2, 2048)])
            datar, i, v = b.regs("data", "i", "v")
            b.movi(datar, data)
            b.label("top")
            b.muli(i, i, 5)
            b.addi(i, i, 3)
            b.andi(i, i, 2047)
            b.ld(v, base=datar, index=i)
            b.cmpi(v, 1)
            b.br("eq", "top")
            b.jmp("top")
        fast = run_core(random_branch, predictor=BimodalPredictor(),
                        config=CoreConfig(mispredict_penalty=2))
        slow = run_core(random_branch, predictor=BimodalPredictor(),
                        config=CoreConfig(mispredict_penalty=30))
        assert slow.ipc < fast.ipc

    def test_deeper_frontend_raises_penalty_cost(self):
        def random_branch(b):
            rng = np.random.default_rng(2)
            data = b.data("bits", [int(v) for v in rng.integers(0, 2, 2048)])
            datar, i, v = b.regs("data", "i", "v")
            b.movi(datar, data)
            b.label("top")
            b.muli(i, i, 5)
            b.addi(i, i, 3)
            b.andi(i, i, 2047)
            b.ld(v, base=datar, index=i)
            b.cmpi(v, 1)
            b.br("eq", "top")
            b.jmp("top")
        shallow = run_core(random_branch, predictor=BimodalPredictor(),
                           config=CoreConfig(frontend_depth=2))
        deep = run_core(random_branch, predictor=BimodalPredictor(),
                        config=CoreConfig(frontend_depth=20))
        assert deep.ipc <= shallow.ipc


class TestBackpressure:
    def test_small_rob_limits_mlp(self):
        def independent_misses(b):
            # many independent loads spread over a large footprint
            base = b.zeros("big", 1)
            regs = b.regs("base", "a", "c", "d", "e")
            b.movi(regs[0], base)
            b.label("top")
            for step, r in enumerate(regs[1:]):
                b.addi(r, r, 4093 + step * 911)
                b.andi(r, r, (1 << 18) - 1)
                b.ld(r, base=regs[0], index=r)
            b.jmp("top")
        big_rob = run_core(independent_misses,
                           config=CoreConfig(rob_size=256))
        small_rob = run_core(independent_misses,
                             config=CoreConfig(rob_size=8))
        assert small_rob.ipc < big_rob.ipc

    def test_small_rs_limits_issue(self):
        def mixed(b):
            regs = b.regs("a", "c", "d", "e")
            b.label("top")
            for r in regs:
                b.addi(r, r, 1)
                b.muli(r, r, 3)
            b.jmp("top")
        big = run_core(mixed, config=CoreConfig(rs_size=92))
        small = run_core(mixed, config=CoreConfig(rs_size=2))
        assert small.ipc < big.ipc


class TestMemoryInteraction:
    def test_store_forwarding_beats_cache_roundtrip(self):
        def spill_reload(b):
            buf = b.zeros("buf", 4)
            addr, v = b.regs("addr", "v")
            b.movi(addr, buf)
            b.label("top")
            b.addi(v, v, 1)
            b.st(v, base=addr)
            b.ld(v, base=addr)      # forwarded
            b.jmp("top")
        stats = run_core(spill_reload)
        assert stats.ipc > 0.8  # forwarding keeps the loop tight

    def test_l1_sized_footprint_faster_than_l2_sized(self):
        def walker(size_words):
            def build(b):
                base = b.zeros("arr", 1)
                addr, i, v = b.regs("addr", "i", "v")
                b.movi(addr, base)
                b.label("top")
                b.addi(i, i, 8)     # one load per line
                b.andi(i, i, size_words - 1)
                b.ld(v, base=addr, index=i)
                b.jmp("top")
            return build
        small = run_core(walker(2048))       # 16KB: L1-resident
        large = run_core(walker(262144))     # 2MB: L2/DRAM traffic
        assert small.ipc > large.ipc

    def test_prefetcher_helps_streaming(self):
        def streamer(b):
            base = b.zeros("arr", 1)
            addr, i, v = b.regs("addr", "i", "v")
            b.movi(addr, base)
            b.label("top")
            b.addi(i, i, 8)
            b.andi(i, i, (1 << 20) - 1)
            b.ld(v, base=addr, index=i)
            b.jmp("top")
        b = ProgramBuilder()
        streamer(b)
        program = b.build()
        with_pf = CoreModel(hierarchy=None)
        machine = Machine(program)
        stats_pf = with_pf.run(machine.stream(12_000), warmup=6_000)
        from repro.memsys.hierarchy import MemoryHierarchy
        no_pf_hier = MemoryHierarchy(HierarchyConfig(prefetch_streams=64))
        no_pf_hier.prefetcher.TRAIN_THRESHOLD = 10**9  # effectively off
        machine2 = Machine(program)
        no_pf = CoreModel(hierarchy=no_pf_hier)
        stats_nopf = no_pf.run(machine2.stream(12_000), warmup=6_000)
        assert stats_pf.ipc > stats_nopf.ipc


class TestDcePortPressure:
    def test_dce_never_blocks_core_ports(self):
        """Core demand accesses take ports with priority; attaching BR must
        not reduce the core's port grants."""
        program = suite.load("sjeng_06")
        baseline = simulate(program, instructions=6_000, warmup=3_000)
        runahead = simulate(program, instructions=6_000, warmup=3_000,
                            br_config=mini())
        # the DCE used ports only when free
        ports = runahead.runahead.dce.ports
        assert ports.dce_uses > 0
        assert ports.core_uses > 0


class TestHierarchyCounters:
    def test_dce_access_accounting_consistent(self):
        program = suite.load("leela_17")
        result = simulate(program, instructions=6_000, warmup=3_000,
                          br_config=mini())
        hierarchy = result.hierarchy
        dce = result.runahead.dce.stats
        # every DCE load that reached the hierarchy is accounted there
        assert hierarchy.dce_accesses == dce.loads_executed
