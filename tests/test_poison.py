"""Tests for poison-based affector detection (§4.4)."""

from repro.core.merge_point import BloomFilter, MergeResult
from repro.core.poison import PoisonPass
from repro.emulator.trace import DynamicUop
from repro.isa import uop as U
from repro.isa.registers import reg_bit
from repro.isa.uop import Uop

SEQ = [0]


def dyn(opcode, dst=-1, srcs=(), base=-1, addr=-1, cond=-1, pc=0,
        taken=False):
    op = Uop(opcode, dst=dst, srcs=srcs, base=base, cond=cond, target=0)
    op.pc = pc
    SEQ[0] += 1
    return DynamicUop(op, SEQ[0], pc + 1, taken=taken, addr=addr)


def make_pass(dest_regs=(), mem_addrs=(), affector_pc=0x99,
              max_distance=100):
    mask = 0
    for reg in dest_regs:
        mask |= reg_bit(reg)
    result = MergeResult(
        branch_pc=affector_pc,
        merge_pc=0x50,
        both_path_dest_mask=mask,
        wrong_path_stores=BloomFilter(),
        correct_path_stores=set(mem_addrs),
        guarded_branches=set(),
    )
    return PoisonPass(result, max_distance=max_distance)


class TestPropagation:
    def test_branch_sourcing_poison_is_affectee(self):
        pipeline = make_pass(dest_regs=[3])
        pipeline.on_retire(dyn(U.CMPI, srcs=(3,), pc=1))   # CC poisoned
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=2))      # sources CC
        assert 2 in pipeline.affectees

    def test_poison_propagates_through_alu(self):
        pipeline = make_pass(dest_regs=[1])
        pipeline.on_retire(dyn(U.ADD, dst=2, srcs=(1, 4), pc=1))
        pipeline.on_retire(dyn(U.CMPI, srcs=(2,), pc=2))
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=3))
        assert 3 in pipeline.affectees

    def test_clean_overwrite_clears_poison(self):
        pipeline = make_pass(dest_regs=[1])
        pipeline.on_retire(dyn(U.MOVI, dst=1, pc=1))        # clean write
        pipeline.on_retire(dyn(U.CMPI, srcs=(1,), pc=2))
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=3))
        assert pipeline.affectees == set()

    def test_load_from_poisoned_address(self):
        pipeline = make_pass(mem_addrs=[0x1000])
        pipeline.on_retire(dyn(U.LD, dst=2, base=5, addr=0x1000, pc=1))
        pipeline.on_retire(dyn(U.CMPI, srcs=(2,), pc=2))
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=3))
        assert 3 in pipeline.affectees

    def test_poisoned_store_taints_address(self):
        pipeline = make_pass(dest_regs=[1])
        pipeline.on_retire(dyn(U.ST, srcs=(1,), base=6, addr=0x2000, pc=1))
        pipeline.on_retire(dyn(U.LD, dst=3, base=6, addr=0x2000, pc=2))
        pipeline.on_retire(dyn(U.CMPI, srcs=(3,), pc=3))
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=4))
        assert 4 in pipeline.affectees

    def test_clean_store_untaints_address(self):
        pipeline = make_pass(dest_regs=[1], mem_addrs=[0x2000])
        pipeline.on_retire(dyn(U.ST, srcs=(4,), base=6, addr=0x2000, pc=1))
        pipeline.on_retire(dyn(U.LD, dst=3, base=6, addr=0x2000, pc=2))
        pipeline.on_retire(dyn(U.CMPI, srcs=(3,), pc=3))
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=4))
        assert pipeline.affectees == set()

    def test_wrong_path_store_bloom_poisons_load(self):
        result = MergeResult(
            branch_pc=0x99, merge_pc=0x50, both_path_dest_mask=0,
            wrong_path_stores=BloomFilter(), correct_path_stores=set(),
            guarded_branches=set())
        result.wrong_path_stores.add(0x3000)
        pipeline = PoisonPass(result)
        pipeline.on_retire(dyn(U.LD, dst=2, base=5, addr=0x3000, pc=1))
        pipeline.on_retire(dyn(U.CMPI, srcs=(2,), pc=2))
        pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=3))
        assert 3 in pipeline.affectees


class TestTermination:
    def test_ends_at_second_affector_instance(self):
        pipeline = make_pass(dest_regs=[1], affector_pc=0x99)
        pipeline.on_retire(dyn(U.CMPI, srcs=(1,), pc=1))
        result = pipeline.on_retire(dyn(U.BR, cond=U.EQ, pc=0x99))
        assert result is not None
        assert not pipeline.active

    def test_ends_at_max_distance(self):
        pipeline = make_pass(dest_regs=[1], max_distance=3)
        for step in range(5):
            pipeline.on_retire(dyn(U.ADDI, dst=9, srcs=(9,), pc=step + 1))
            if not pipeline.active:
                break
        assert not pipeline.active

    def test_inactive_pass_returns_none(self):
        pipeline = make_pass(dest_regs=[1], max_distance=1)
        pipeline.on_retire(dyn(U.ADDI, dst=9, srcs=(9,), pc=1))
        pipeline.on_retire(dyn(U.ADDI, dst=9, srcs=(9,), pc=2))
        assert pipeline.on_retire(dyn(U.ADDI, dst=9, srcs=(9,), pc=3)) is None
