"""Shared test fixtures.

The config layer reads ``REPRO_*`` environment variables at *resolution
time* (every call into the default session), so ambient variables from
the invoking shell — or from a CI leg that deliberately exports
conflicting ones — would silently reshape every test's region lengths
and cache bounds.  The autouse fixture below gives each test a clean
environment; tests that exercise the env layer set their own variables
through ``monkeypatch.setenv`` on top of it.
"""

import pytest

from repro.config import CONFIG_FILE_ENV, ENV_VARS
from repro.predictors.batched import BACKEND_ENV
from repro.session import BATCH_REPLAY_ENV


@pytest.fixture(autouse=True)
def _clean_repro_env(monkeypatch):
    for var in (*ENV_VARS.values(), CONFIG_FILE_ENV,
                BACKEND_ENV, BATCH_REPLAY_ENV):
        monkeypatch.delenv(var, raising=False)
