"""Tests for the memory-system substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.cache import Cache, word_to_line
from repro.memsys.dram import Dram, DramConfig
from repro.memsys.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memsys.mshr import MshrFile
from repro.memsys.port import PortTracker
from repro.memsys.prefetcher import StreamPrefetcher


class TestCache:
    def make(self, ways=2, sets=4):
        return Cache("t", size_bytes=64 * ways * sets, ways=ways,
                     line_bytes=64)

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(5, is_write=False)
        cache.fill(5)
        assert cache.access(5, is_write=False)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = self.make(ways=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.access(0, is_write=False)  # 0 becomes MRU
        cache.fill(2)                    # evicts 1 (LRU)
        assert cache.lookup(0) and cache.lookup(2)
        assert not cache.lookup(1)

    def test_dirty_writeback_counted(self):
        cache = self.make(ways=1, sets=1)
        cache.fill(0, is_write=True)
        cache.fill(1)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = self.make(ways=1, sets=1)
        cache.fill(0)
        cache.fill(1)
        assert cache.stats.writebacks == 0

    def test_set_mapping(self):
        cache = self.make(ways=1, sets=4)
        cache.fill(0)
        cache.fill(1)  # different set: no conflict
        assert cache.lookup(0) and cache.lookup(1)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", size_bytes=3 * 64, ways=1, line_bytes=64)

    def test_prefetch_hit_tracking(self):
        cache = self.make()
        cache.fill(9, from_prefetch=True)
        cache.access(9, is_write=False)
        assert cache.stats.prefetch_fills == 1
        assert cache.stats.prefetch_hits == 1

    def test_word_to_line(self):
        line, offset = word_to_line(17)  # 8 words per 64B line
        assert line == 2 and offset == 1


class TestMshr:
    def test_merge_in_flight(self):
        mshrs = MshrFile(4)
        mshrs.allocate(7, cycle=0, ready=100)
        assert mshrs.lookup(7, cycle=50) == 100
        assert mshrs.merges == 1

    def test_completed_not_merged(self):
        mshrs = MshrFile(4)
        mshrs.allocate(7, cycle=0, ready=100)
        assert mshrs.lookup(7, cycle=150) == -1

    def test_capacity_delay(self):
        mshrs = MshrFile(2)
        mshrs.allocate(1, cycle=0, ready=100)
        mshrs.allocate(2, cycle=0, ready=120)
        delayed = mshrs.allocate(3, cycle=0, ready=200)
        assert delayed == 300  # waited for line 1 at cycle 100
        assert mshrs.capacity_stalls == 1

    def test_no_delay_when_space(self):
        mshrs = MshrFile(8)
        assert mshrs.allocate(1, cycle=0, ready=50) == 50

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_outstanding_never_exceeds_capacity(self, lines):
        mshrs = MshrFile(4)
        cycle = 0
        for line in lines:
            if mshrs.lookup(line, cycle) < 0:
                mshrs.allocate(line, cycle, cycle + 100)
            assert mshrs.outstanding_count(cycle) <= 4
            cycle += 3


class TestDram:
    def test_row_hit_faster_than_conflict(self):
        dram = Dram()
        first = dram.access(0, cycle=0)          # row conflict (cold)
        second = dram.access(16, cycle=first)    # same bank 0, same row
        assert dram.row_conflicts == 1 and dram.row_hits == 1
        cold_latency = first - 0
        hit_latency = second - first
        assert hit_latency < cold_latency

    def test_bank_conflict_serializes(self):
        dram = Dram(DramConfig(num_banks=2))
        a = dram.access(0, cycle=0)
        b = dram.access(2, cycle=0)  # same bank (line % 2)
        assert b > a

    def test_different_banks_overlap(self):
        dram = Dram(DramConfig(num_banks=8, t_bus=1))
        a = dram.access(0, cycle=0)
        b = dram.access(1, cycle=0)  # different bank
        assert abs(b - a) <= 2  # only bus transfer separates them

    def test_row_hit_rate(self):
        dram = Dram()
        for _ in range(10):
            dram.access(0, cycle=0)
        assert dram.row_hit_rate() == pytest.approx(0.9)


class TestPrefetcher:
    def test_detects_ascending_stream(self):
        prefetcher = StreamPrefetcher(distance=16, degree=1)
        issued = []
        for line in range(10):
            issued.extend(prefetcher.train(line))
        assert issued  # trained after a couple of strides
        assert issued[0] >= 16  # prefetch lands distance ahead

    def test_detects_descending_stream(self):
        prefetcher = StreamPrefetcher(distance=4, degree=1)
        issued = []
        for line in range(100, 90, -1):
            issued.extend(prefetcher.train(line))
        assert issued and issued[0] == 98 - 4  # distance below trigger line

    def test_random_stream_trains_nothing(self):
        prefetcher = StreamPrefetcher(window=2)
        issued = []
        for line in [5, 900, 17, 4000, 33, 12000]:
            issued.extend(prefetcher.train(line))
        assert issued == []

    def test_stream_capacity_replacement(self):
        prefetcher = StreamPrefetcher(num_streams=2)
        prefetcher.train(0)
        prefetcher.train(1000)
        prefetcher.train(2000)  # evicts the LRU stream
        assert len(prefetcher._streams) == 2


class TestPortTracker:
    def test_dce_waits_for_free_port(self):
        ports = PortTracker(num_ports=2)
        ports.use_core(10)
        ports.use_core(10)
        granted = ports.acquire_free(10)
        assert granted == 11

    def test_dce_gets_idle_cycle_immediately(self):
        ports = PortTracker(num_ports=2)
        assert ports.acquire_free(5) == 5

    def test_delay_accounting(self):
        ports = PortTracker(num_ports=1)
        ports.use_core(0)
        ports.use_core(1)
        ports.acquire_free(0)
        assert ports.dce_delay_cycles == 2

    def test_prune_keeps_recent(self):
        ports = PortTracker()
        for cycle in range(0, 10000, 100):
            ports.use_core(cycle)
        ports.prune(9000)
        assert all(c >= 9000 for c in ports._usage)


class TestHierarchy:
    def small(self):
        config = HierarchyConfig(
            l1d_bytes=2 * 64 * 2, l1_ways=2,       # 2 sets x 2 ways
            l1i_bytes=2 * 64 * 2,
            l2_bytes=16 * 64 * 4, l2_ways=4,
        )
        return MemoryHierarchy(config)

    def test_l1_hit_latency(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access_data(100, cycle=0)
        second = hierarchy.access_data(100, cycle=first)
        assert second - first == hierarchy.config.l1_latency

    def test_miss_slower_than_hit(self):
        hierarchy = MemoryHierarchy()
        miss_done = hierarchy.access_data(100, cycle=0)
        hit_done = hierarchy.access_data(100, cycle=miss_done) - miss_done
        assert miss_done > hit_done

    def test_l2_hit_between_l1_and_dram(self):
        hierarchy = self.small()
        # fill L2 and evict line 0 from the 2-way L1 set without
        # overflowing the 4-way L2 set
        hierarchy.access_data(0, cycle=0)
        for word in [16, 32, 48]:
            hierarchy.access_data(word * 8, cycle=0)
        done = hierarchy.access_data(0, cycle=1000)
        latency = done - 1000
        cfg = hierarchy.config
        assert latency == cfg.l1_latency + cfg.l2_latency

    def test_mshr_merge_returns_same_ready(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access_data(0, cycle=0)
        merged = hierarchy.access_data(1, cycle=1)  # same line
        assert merged == first

    def test_core_dce_accounting(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access_data(0, cycle=0)
        hierarchy.access_data(8, cycle=0, from_dce=True)
        assert hierarchy.core_accesses == 1
        assert hierarchy.dce_accesses == 1

    def test_sequential_loads_trigger_prefetch(self):
        hierarchy = MemoryHierarchy()
        cycle = 0
        for word in range(0, 8 * 40, 8):  # one load per line, ascending
            cycle = hierarchy.access_data(word, cycle)
        assert hierarchy.l2.stats.prefetch_fills > 0

    def test_insn_fetch_hits_after_warmup(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access_insn(0, cycle=0)
        done = hierarchy.access_insn(1, cycle=100)  # same 8-uop line
        assert done - 100 == hierarchy.config.l1_latency
