"""Tests for the dependency-aware sweep scheduler (``repro.sched``).

Covers the DAG build (record → replay edges), dispatch-unit construction
per executor mode, the pluggable executor registry, store-backed sweep
resume (only cells with no landed result execute; merged rows and
registries stay bit-identical to an uninterrupted run), the
``host.scheduler.*`` stat surface, the ``order_from`` plan-mismatch
warning, and the ``repro sweep report`` / ``resume`` exit-code contract.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import config as repro_config
from repro.cli import main as cli_main
from repro.config import RunConfig
from repro.observe.journal import read_journal
from repro.observe.sweep_report import (
    build_sweep_report,
    format_sweep_report,
)
from repro.registry import UnknownComponentError
from repro.sched import (
    ResultStore,
    SweepPlanMismatchWarning,
    build_dag,
    build_units,
    executor_names,
    resolve_executor_name,
    result_key,
    store_outputs_mode,
)
from repro.session import Session, merged_registry
from repro.sim.bench import payload_digest

REGION = dict(instructions=800, warmup=400)

CELLS = [("sjeng_06", "bimodal"), ("sjeng_06", "gshare"),
         ("mcf_06", "bimodal"), ("mcf_06", "gshare")]


def session(**overrides):
    return Session(repro_config.current_config().replace(
        instructions=REGION["instructions"], warmup=REGION["warmup"],
        **overrides))


def scalar_task(index, benchmark, variant):
    """A task tuple in the shape ``run_cells`` compiles (scalar cell)."""
    return (None, benchmark, variant, 800, 400, True, "full",
            {"index": index})


def batch_task(index_map, benchmark):
    """A fused batch-group task: ``(variant, index)`` member tuples."""
    members = tuple(index_map)
    return (None, benchmark, members, 800, 400, True, "mpki",
            {"index": members[0][1]})


def host_stripped(registry):
    return {name: value
            for name, value in registry.to_flat_dict().items()
            if not name.startswith("host.")}


class TestExecutorRegistry:
    def test_builtin_backends_registered(self):
        assert executor_names()[:1] == ["auto"]
        assert {"inline", "pool"} <= set(executor_names())

    def test_auto_keeps_classic_split(self):
        assert resolve_executor_name("auto", 1, 10) == "inline"
        assert resolve_executor_name("auto", 4, 1) == "inline"
        assert resolve_executor_name(None, 4, 10) == "pool"
        assert resolve_executor_name("", 4, 10) == "pool"

    def test_explicit_name_wins_over_auto_rules(self):
        assert resolve_executor_name("inline", 8, 100) == "inline"
        assert resolve_executor_name("pool", 1, 1) == "pool"

    def test_unknown_backend_raises_with_suggestions(self):
        with pytest.raises(UnknownComponentError, match="pool"):
            resolve_executor_name("pol", 2, 10)


class TestBuildDag:
    def test_first_task_per_benchmark_is_record_root(self):
        tasks = [scalar_task(0, "sjeng_06", "bimodal"),
                 scalar_task(1, "sjeng_06", "gshare"),
                 scalar_task(2, "mcf_06", "bimodal"),
                 scalar_task(3, "mcf_06", "gshare")]
        dag = build_dag(tasks)
        assert [node.kind for node in dag.nodes] == \
            ["record", "replay", "record", "replay"]
        assert dag.edges == [(0, 1), (2, 3)]
        assert dag.edge_cells == [(0, 1), (2, 3)]

    def test_edges_follow_plan_order_not_input_order(self):
        # after an order_from reorder the *first scheduled* task records
        tasks = [scalar_task(3, "mcf_06", "gshare"),
                 scalar_task(2, "mcf_06", "bimodal")]
        dag = build_dag(tasks)
        assert dag.nodes[0].kind == "record"
        assert dag.edge_cells == [(3, 2)]

    def test_batch_group_is_single_node(self):
        tasks = [batch_task([("bimodal", 0), ("gshare", 1)], "sjeng_06"),
                 scalar_task(2, "sjeng_06", "mini")]
        dag = build_dag(tasks)
        assert dag.nodes[0].kind == "record"
        assert dag.nodes[0].cells == [(0, "sjeng_06", "bimodal"),
                                      (1, "sjeng_06", "gshare")]
        assert dag.nodes[1].kind == "replay"
        assert dag.edge_cells == [(0, 2)]

    def test_batch_dependent_kind(self):
        tasks = [scalar_task(0, "sjeng_06", "mini"),
                 batch_task([("bimodal", 1), ("gshare", 2)], "sjeng_06")]
        dag = build_dag(tasks)
        assert dag.nodes[1].kind == "batch"


class TestBuildUnits:
    def _dag(self, benchmarks=2, variants=3):
        tasks = [scalar_task(b * variants + v, f"bench_{b}", f"var_{v}")
                 for b in range(benchmarks) for v in range(variants)]
        return build_dag(tasks)

    def test_serial_mode_one_node_per_unit_no_deps(self):
        dag = self._dag()
        units, deps = build_units(dag, dag.nodes, "serial", 1, None)
        assert units == [[n.id] for n in dag.nodes]
        assert deps == {}

    def test_dag_mode_enforces_record_edges(self):
        dag = self._dag(benchmarks=2, variants=2)
        units, deps = build_units(dag, dag.nodes, "dag", 2, None)
        assert units == [[0], [1], [2], [3]]
        assert deps == {1: [0], 3: [2]}

    def test_dag_mode_groups_dependents_per_benchmark(self):
        # quick-matrix shape: records dispatch alone, each benchmark's
        # replays ride in one grouped unit gated on its record — extra
        # per-replay dispatches would cost a disk trace load each for no
        # added parallelism at this matrix/jobs ratio
        dag = self._dag(benchmarks=2, variants=3)
        units, deps = build_units(dag, dag.nodes, "dag", 4, None)
        assert units == [[0], [1, 2], [3], [4, 5]]
        assert deps == {1: [0], 3: [2]}

    def test_dag_mode_splits_large_dependent_groups(self):
        # a benchmark holding most of the matrix gets its replays split
        # jobs-scaled so the tail spreads over idle workers
        dag = self._dag(benchmarks=1, variants=10)
        units, deps = build_units(dag, dag.nodes, "dag", 4, None)
        assert units[0] == [0]
        assert len(units) == 4
        assert sorted(i for unit in units for i in unit) == list(range(10))
        assert deps == {1: [0], 2: [0], 3: [0]}

    def test_dag_mode_drops_edges_to_resumed_roots(self):
        dag = self._dag(benchmarks=1, variants=2)
        pending = [dag.nodes[1]]  # the record node already resumed
        units, deps = build_units(dag, pending, "dag", 2, None)
        assert units == [[1]]
        assert deps == {}

    def test_chunked_explicit_chunksize_is_flat_runner_chunks(self):
        dag = self._dag(benchmarks=2, variants=3)
        units, deps = build_units(dag, dag.nodes, "chunked", 4, 3)
        assert units == [[0, 1, 2], [3, 4, 5]]
        assert deps == {}

    def test_chunked_default_splits_benchmark_aligned(self):
        dag = self._dag(benchmarks=2, variants=4)
        units, deps = build_units(dag, dag.nodes, "chunked", 4, None)
        assert deps == {}
        # every unit stays within one benchmark and covers all nodes
        for unit in units:
            assert len({dag.nodes[i].benchmark for i in unit}) == 1
        assert sorted(i for unit in units for i in unit) == list(range(8))
        assert len(units) >= 4  # ~jobs-scaled concurrency


class TestSchedulerJournal:
    def test_dag_built_event_records_structure(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        session().run_cells(CELLS, journal=path)
        events = read_journal(path)["events"]
        assert events[0]["executor"] == "inline"
        (dag_built,) = [e for e in events if e["event"] == "dag_built"]
        assert dag_built["mode"] == "serial"
        assert dag_built["executor"] == "inline"
        assert dag_built["nodes"] == 4
        # record → replay edges observable: one per benchmark
        assert dag_built["edges"] == [[0, 1], [2, 3]]
        assert dag_built["stream"] == "scheduler"

    def test_parallel_dag_mode_with_shared_trace_dir(self, tmp_path):
        trace_dir = tmp_path / "traces"
        path = str(tmp_path / "sweep.jsonl")
        sess = session(jobs=2, trace_cache_dir=str(trace_dir))
        rows = sess.run_cells(CELLS, jobs=2, journal=path)
        (dag_built,) = [e for e in read_journal(path)["events"]
                        if e["event"] == "dag_built"]
        assert dag_built["mode"] == "dag"
        assert dag_built["executor"] == "pool"
        assert dag_built["edges"] == [[0, 1], [2, 3]]
        assert sess.last_sweep["steals"] >= 0
        # dependency-aware execution must not change any result
        reference = session().run_cells(CELLS)
        assert [payload_digest(row["payload"]) for row in rows] == \
            [payload_digest(row["payload"]) for row in reference]

    def test_parallel_chunked_matches_serial(self):
        serial = session().run_cells(CELLS)
        parallel = session(jobs=2).run_cells(CELLS, jobs=2)
        assert [payload_digest(row["payload"]) for row in parallel] == \
            [payload_digest(row["payload"]) for row in serial]


class TestHostSchedulerStats:
    def test_merge_publishes_scheduler_counters(self):
        sess = session()
        rows = sess.run_cells(CELLS, merge=True)
        flat = sess.registry.to_flat_dict()
        assert flat["host.scheduler.cells_scheduled"] == len(CELLS)
        assert flat["host.scheduler.cells_resumed_from_store"] == 0
        assert flat["host.scheduler.dag_nodes"] == 4
        assert flat["host.scheduler.dag_edges"] == 2
        assert flat["host.scheduler.units"] == 4
        assert flat["host.scheduler.steals"] == 0
        assert flat["host.scheduler.executor.inline"] == 1
        assert flat["host.scheduler.mode.serial"] == 1
        # host-scoped on purpose: payload digests strip stats.host, so
        # the new counters never perturb a scalar-identical payload
        reference = session().run_cells(CELLS)
        assert [payload_digest(row["payload"]) for row in rows] == \
            [payload_digest(row["payload"]) for row in reference]

    def test_run_matrix_merged_carries_scheduler_stats(self):
        matrix, registry = session().run_matrix(
            variants=["bimodal", "gshare"], benchmarks=["sjeng_06"],
            merged=True)
        flat = registry.to_flat_dict()
        assert flat["host.scheduler.cells_scheduled"] == 2
        assert "host.scheduler.executor.inline" in flat

    def test_store_counters_surface_under_host_scope(self, tmp_path):
        sess = session(result_store_dir=str(tmp_path / "store"))
        sess.run_cells(CELLS, merge=True)
        flat = sess.registry.to_flat_dict()
        assert flat["host.scheduler.store.stores"] == len(CELLS)
        assert flat["host.scheduler.store.misses"] == len(CELLS)


class TestStoreResume:
    def test_full_resume_executes_nothing(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = session(result_store_dir=store_dir)
        rows = first.run_cells(CELLS)
        assert first.last_sweep["cells_scheduled"] == len(CELLS)

        resumed = session(result_store_dir=store_dir)
        again = resumed.run_cells(CELLS)
        assert resumed.last_sweep["cells_scheduled"] == 0
        assert resumed.last_sweep["cells_resumed_from_store"] == len(CELLS)
        assert all(row["result_store_hit"] for row in again)
        assert [payload_digest(row["payload"]) for row in again] == \
            [payload_digest(row["payload"]) for row in rows]

    def test_partial_resume_executes_only_missing_cells(self, tmp_path):
        store_dir = str(tmp_path / "store")
        config = repro_config.current_config().replace(
            result_store_dir=store_dir, **REGION)
        Session(config).run_cells(CELLS)
        # damage exactly one landed cell: blow its store entry away
        store = ResultStore(store_dir)
        key = result_key(config.fingerprint(), "mcf_06", "gshare",
                         REGION["instructions"], REGION["warmup"],
                         store_outputs_mode("full", "gshare"))
        os.remove(store.path_for(key))

        resumed = Session(config)
        rows = resumed.run_cells(CELLS)
        assert resumed.last_sweep["cells_scheduled"] == 1
        assert resumed.last_sweep["cells_resumed_from_store"] == 3
        executed = [row for row in rows
                    if not row.get("result_store_hit")]
        assert [(r["benchmark"], r["variant"]) for r in executed] == \
            [("mcf_06", "gshare")]

    def test_resumed_registry_matches_uninterrupted_run(self, tmp_path):
        store_dir = str(tmp_path / "store")
        reference_rows = session().run_cells(CELLS)
        session(result_store_dir=store_dir).run_cells(CELLS)
        resumed_rows = session(result_store_dir=store_dir).run_cells(CELLS)
        assert host_stripped(merged_registry(resumed_rows)) == \
            host_stripped(merged_registry(reference_rows))

    def test_resumed_rows_flagged_in_journal(self, tmp_path):
        store_dir = str(tmp_path / "store")
        session(result_store_dir=store_dir).run_cells(CELLS)
        path = str(tmp_path / "resume.jsonl")
        session(result_store_dir=store_dir).run_cells(CELLS, journal=path)
        journal = read_journal(path)
        finished = [e for e in journal["events"]
                    if e["event"] == "cell_finished"]
        assert len(finished) == len(CELLS)
        assert all(e.get("result_store_hit") for e in finished)
        (dag_built,) = [e for e in journal["events"]
                        if e["event"] == "dag_built"]
        assert dag_built["resumed_cells"] == [0, 1, 2, 3]
        assert journal["complete"]

    def test_store_hit_flag_absent_without_store(self, tmp_path):
        # store-less journals must stay byte-compatible: no new key
        path = str(tmp_path / "plain.jsonl")
        session().run_cells(CELLS, journal=path)
        finished = [e for e in read_journal(path)["events"]
                    if e["event"] == "cell_finished"]
        assert all("result_store_hit" not in e for e in finished)

    def test_cache_false_bypasses_store(self, tmp_path):
        store_dir = tmp_path / "store"
        session(result_store_dir=str(store_dir)).run_cells(
            CELLS, cache=False)
        assert not store_dir.exists()

    def test_batch_nodes_resume_whole_groups(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = session(result_store_dir=store_dir)
        rows = first.run_cells(CELLS, outputs="mpki")
        resumed = session(result_store_dir=store_dir)
        again = resumed.run_cells(CELLS, outputs="mpki")
        assert resumed.last_sweep["cells_resumed_from_store"] == len(CELLS)
        assert [payload_digest(row["payload"]) for row in again] == \
            [payload_digest(row["payload"]) for row in rows]


class TestPlanMismatch:
    def test_mismatched_order_from_warns_and_journals(self, tmp_path):
        prior = str(tmp_path / "prior.jsonl")
        session().run_cells(CELLS[:3], journal=prior)
        requested = CELLS[:2] + [("mcf_17", "bimodal")]
        path = str(tmp_path / "sweep.jsonl")
        with pytest.warns(SweepPlanMismatchWarning,
                          match="mcf_17/bimodal"):
            session().run_cells(requested, order_from=prior, journal=path)
        (event,) = [e for e in read_journal(path)["events"]
                    if e["event"] == "plan_mismatch"]
        assert event["unmatched_requested"] == ["mcf_17/bimodal"]
        assert event["unmatched_journal"] == ["mcf_06/bimodal"]
        report = build_sweep_report(path)
        assert report["plan_mismatch"]["unmatched_requested"] == \
            ["mcf_17/bimodal"]
        assert "plan mismatch" in format_sweep_report(report)

    def test_matching_plan_stays_silent(self, tmp_path):
        import warnings
        prior = str(tmp_path / "prior.jsonl")
        session().run_cells(CELLS, journal=prior)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SweepPlanMismatchWarning)
            session().run_cells(CELLS, order_from=prior)


def _truncate_journal(path):
    """Drop ``sweep_finished`` — the journal a SIGKILLed sweep leaves."""
    lines = [line for line in open(path).read().splitlines()
             if '"sweep_finished"' not in line]
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


class TestSweepCliExitCodes:
    def test_report_exit_3_for_incomplete_resumable(self, tmp_path,
                                                    capsys):
        path = str(tmp_path / "sweep.jsonl")
        session(result_store_dir=str(tmp_path / "store")).run_cells(
            CELLS, journal=path)
        assert cli_main(["sweep", "report", path]) == 0
        _truncate_journal(path)
        assert cli_main(["sweep", "report", path]) == 3
        captured = capsys.readouterr()
        assert f"python -m repro sweep resume {path}" in captured.err

    def test_report_exit_1_for_failed_cells(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        session().run_cells([("sjeng_06", "bimodal"),
                             ("sjeng_06", "nonexistent-variant")],
                            journal=path)
        assert cli_main(["sweep", "report", path]) == 1

    def test_watch_once_exit_codes(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        session().run_cells(CELLS[:2], journal=path)
        assert cli_main(["sweep", "watch", path, "--once"]) == 0
        _truncate_journal(path)
        assert cli_main(["sweep", "watch", path, "--once"]) == 3

    def test_resume_cli_completes_interrupted_sweep(self, tmp_path,
                                                    capsys):
        store_dir = str(tmp_path / "store")
        config = repro_config.current_config().replace(
            result_store_dir=store_dir, **REGION)
        path = str(tmp_path / "sweep.jsonl")
        Session(config).run_cells(CELLS, journal=path)
        _truncate_journal(path)
        # lose one landed result too: resume must execute exactly it
        store = ResultStore(store_dir)
        key = result_key(config.fingerprint(), "sjeng_06", "gshare",
                         REGION["instructions"], REGION["warmup"], "full")
        os.remove(store.path_for(key))

        assert cli_main(["sweep", "resume", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["cells_total"] == len(CELLS)
        assert summary["cells_resumed_from_store"] == 3
        assert summary["cells_executed"] == 1
        assert summary["cells_failed"] == 0
        reference = session().run_cells(CELLS)
        assert summary["digests"] == {
            f"{row['benchmark']}/{row['variant']}":
            payload_digest(row["payload"]) for row in reference}
        resumed = read_journal(f"{path}.resume")
        assert resumed["complete"]

    def test_resume_without_store_is_hard_error(self, tmp_path, capsys):
        path = str(tmp_path / "sweep.jsonl")
        session().run_cells(CELLS[:2], journal=path)
        _truncate_journal(path)
        assert cli_main(["sweep", "resume", path]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_resume_rejects_non_journal(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not a journal\n")
        assert cli_main(["sweep", "resume", str(garbage)]) == 2


class TestKillAndResume:
    """A real SIGKILL mid-sweep, resumed to bit-identical results."""

    BENCHMARKS = ["sjeng_06", "mcf_06", "mcf_17"]
    PREDICTORS = ["tage64", "gshare", "bimodal", "perceptron"]

    def test_sigkilled_sweep_resumes_only_remaining_cells(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(os.path.dirname(__file__), os.pardir,
                                     "src")] +
                       os.environ.get("PYTHONPATH", "").split(os.pathsep)),
                   REPRO_INSTRUCTIONS="6000", REPRO_WARMUP="3000",
                   REPRO_RESULT_STORE_DIR=str(tmp_path / "store"))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "compare",
             *self.BENCHMARKS, "--predictors", *self.PREDICTORS,
             "--journal", journal, "--json"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if os.path.exists(journal) and any(
                        '"cell_finished"' in line
                        for line in open(journal)):
                    break
                time.sleep(0.005)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait()
        journal_doc = read_journal(journal)
        assert not journal_doc["complete"]
        landed = len(list((tmp_path / "store").glob("*.result")))

        config = repro_config.current_config().replace(
            instructions=6000, warmup=3000,
            result_store_dir=str(tmp_path / "store"))
        cells = [tuple(cell) for cell in journal_doc["events"][0]["cells"]]
        resumed = Session(config)
        rows = resumed.run_cells(cells, outputs="mpki")
        # only cells with no landed result executed (batch fusion may
        # re-run a partially-landed group, so executed >= missing)
        stats = resumed.last_sweep
        assert stats["cells_resumed_from_store"] + \
            stats["cells_scheduled"] == len(cells)
        assert stats["cells_resumed_from_store"] <= landed

        reference = Session(config.replace(result_store_dir=None))
        reference_rows = reference.run_cells(cells, outputs="mpki")
        assert [payload_digest(row["payload"]) for row in rows] == \
            [payload_digest(row["payload"]) for row in reference_rows]
        assert host_stripped(merged_registry(rows)) == \
            host_stripped(merged_registry(reference_rows))
