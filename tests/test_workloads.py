"""Tests for the workload suite: structure, hardness, determinism."""

import pytest

from repro.emulator.machine import Machine
from repro.predictors.tage_scl import tage_scl_64kb
from repro.workloads import suite
from repro.workloads.builder import advance_index
from repro.workloads.graphs import edge_list, uniform_random_graph
from repro.isa.program import ProgramBuilder


class TestGraphs:
    def test_csr_consistency(self):
        graph = uniform_random_graph(64, 4, seed=5)
        assert graph.num_nodes == 64
        assert graph.offsets[-1] == graph.num_edges
        for node in range(graph.num_nodes):
            assert graph.out_degree(node) == len(graph.neighbors(node))

    def test_columns_sorted_per_node(self):
        graph = uniform_random_graph(64, 4, seed=5)
        for node in range(graph.num_nodes):
            neighbors = graph.neighbors(node)
            assert neighbors == sorted(neighbors)

    def test_no_self_loops(self):
        graph = uniform_random_graph(64, 4, seed=5)
        for node in range(graph.num_nodes):
            assert node not in graph.neighbors(node)

    def test_edge_list_matches(self):
        graph = uniform_random_graph(32, 3, seed=6)
        sources, targets, weights = edge_list(graph)
        assert len(sources) == len(targets) == len(weights) \
            == graph.num_edges

    def test_deterministic(self):
        a = uniform_random_graph(64, 4, seed=5)
        b = uniform_random_graph(64, 4, seed=5)
        assert a.columns == b.columns and a.offsets == b.offsets


class TestBuilderHelpers:
    def test_advance_index_rejects_short_period_lcg(self):
        b = ProgramBuilder()
        reg = b.reg("x")
        with pytest.raises(ValueError):
            advance_index(b, reg, 255, mult=3, add=7)
        with pytest.raises(ValueError):
            advance_index(b, reg, 255, mult=5, add=8)

    def test_advance_index_full_period(self):
        """The LCG must visit many distinct indices (no short cycles)."""
        b = ProgramBuilder()
        data = b.zeros("d", 1)
        x = b.reg("x")
        b.movi(x, 0)
        b.label("top")
        advance_index(b, x, 255)
        b.jmp("top")
        machine = Machine(b.build())
        values = set()
        for record in machine.stream(3 * 256 * 3):
            if record.uop.name == "ANDI":
                values.add(record.dst_value)
        assert len(values) == 256


class TestSuite:
    def test_registry_shape(self):
        assert len(suite.BENCHMARKS) == 17
        assert len(suite.names("spec17")) == 5
        assert len(suite.names("spec06")) == 6
        assert len(suite.names("gap")) == 6

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            suite.get("nonexistent")

    def test_load_caches(self):
        assert suite.load("leela_17") is suite.load("leela_17")

    @pytest.mark.parametrize("name", suite.BENCHMARK_NAMES)
    def test_kernel_runs_forever(self, name):
        """Every kernel must sustain arbitrary instruction budgets."""
        machine = Machine(suite.get(name).builder())
        records = machine.run(3000)
        assert len(records) == 3000
        assert not machine.halted

    @pytest.mark.parametrize("name", suite.BENCHMARK_NAMES)
    def test_kernel_has_hard_branches(self, name):
        """The suite selects misprediction-intensive workloads (MPKI > 2,
        §5.1) — every kernel must defeat TAGE-SC-L."""
        machine = Machine(suite.get(name).builder())
        predictor = tage_scl_64kb()
        instructions = 0
        mispredicts = 0
        for record in machine.stream(14_000):
            instructions += 1
            if record.uop.is_cond_branch:
                if predictor.predict(record.pc) != record.taken:
                    if instructions > 6000:  # past warmup
                        mispredicts += 1
                predictor.update(record.pc, record.taken)
        mpki = 1000.0 * mispredicts / 8000
        assert mpki > 2.0, f"{name} is too predictable (MPKI {mpki:.1f})"

    @pytest.mark.parametrize("name", ["leela_17", "bfs", "tc"])
    def test_kernel_deterministic(self, name):
        first = Machine(suite.get(name).builder()).run(2000)
        second = Machine(suite.get(name).builder()).run(2000)
        assert [(r.pc, r.taken) for r in first] == \
            [(r.pc, r.taken) for r in second]

    def test_register_budget_respected(self):
        for benchmark in suite.BENCHMARKS:
            benchmark.builder()  # would raise on >32 registers
