"""Component registries: registration rules, discovery, extensibility.

The extensibility tests are the acceptance criterion of the registry
refactor: ONE ``@register_predictor`` definition must make a new
component addressable through ``run``/``run_matrix``, ``spec:`` tokens,
the MPKI replay fast path, the CLI choices, and ``repro list`` — with no
second registration anywhere.
"""

import pytest

from repro import cli
from repro.predictors.base import AlwaysTakenPredictor
from repro.predictors.registry import PREDICTORS, register_predictor
from repro.registry import Registry, RegistryError, UnknownComponentError
from repro.sim import experiments
from repro.sim.variants import BR_VARIANTS, register_variant
from repro.workloads import suite
from repro.workloads.registry import (
    BENCHMARK_REGISTRY,
    register_benchmark,
    unregister_benchmark,
)

REGION = dict(instructions=800, warmup=400)


class TestRegistryBasics:
    def test_insertion_order_and_sorted_view(self):
        registry = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            registry.register(name, name.upper())
        assert registry.names() == ["zeta", "alpha", "mid"]
        assert registry.names(sort=True) == ["alpha", "mid", "zeta"]
        assert list(registry) == ["zeta", "alpha", "mid"]

    def test_duplicate_name_raises(self):
        registry = Registry("widget")
        registry.register("x", 1)
        with pytest.raises(RegistryError, match="duplicate widget 'x'"):
            registry.register("x", 2)
        # the original registration survives the failed overwrite
        assert registry.get("x") == 1

    def test_duplicate_raise_is_a_value_error(self):
        registry = Registry("widget")
        registry.register("x", 1)
        with pytest.raises(ValueError):
            registry.register("x", 2)

    def test_decorator_form_returns_object_unchanged(self):
        registry = Registry("widget")

        @registry.register("fn", role="demo")
        def fn():
            return 42

        assert fn() == 42
        assert registry.get("fn") is fn
        assert registry.meta("fn") == {"role": "demo"}

    def test_invalid_names_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.register("", 1)
        with pytest.raises(RegistryError):
            registry.register(3, 1)

    def test_unknown_name_suggests_near_misses(self):
        registry = Registry("widget")
        registry.register("tage64", 1)
        registry.register("tage80", 2)
        with pytest.raises(UnknownComponentError) as exc_info:
            registry.get("tage46")
        message = str(exc_info.value)
        assert "unknown widget 'tage46'" in message
        assert "did you mean" in message and "tage64" in message
        assert "choose from" in message

    def test_unknown_name_is_a_key_error(self):
        with pytest.raises(KeyError):
            Registry("widget").get("nope")

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("x", 1)
        registry.unregister("x")
        assert "x" not in registry
        with pytest.raises(UnknownComponentError):
            registry.unregister("x")


class TestBuiltinCatalogues:
    def test_predictors_present(self):
        assert {"tage64", "tage80", "mtage"} <= set(PREDICTORS.names())
        for name in PREDICTORS:
            assert PREDICTORS.meta(name)["predictor_only"] is True

    def test_benchmark_registry_matches_suite_order(self):
        figure_names = [b.name for b in suite.BENCHMARKS]
        assert figure_names == suite.BENCHMARK_NAMES
        assert "stress_many" in BENCHMARK_REGISTRY
        assert "stress_many" not in suite.BENCHMARK_NAMES

    def test_variant_name_predictor_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            register_variant("tage64")(lambda: {})


class TestOneDecoratorExtensibility:
    @pytest.fixture
    def toy_predictor(self):
        @register_predictor("toy-taken",
                            description="always-taken toy baseline")
        def toy_taken():
            return AlwaysTakenPredictor()

        yield "toy-taken"
        PREDICTORS.unregister("toy-taken")

    def test_runs_through_run_and_matrix(self, toy_predictor):
        result = experiments.run("sjeng_06", toy_predictor, **REGION)
        assert result.mpki > 0
        matrix = experiments.run_matrix(variants=[toy_predictor],
                                        benchmarks=["sjeng_06"], **REGION)
        assert matrix["sjeng_06"][toy_predictor]["mpki"] == result.mpki

    def test_takes_the_mpki_replay_fast_path(self, toy_predictor):
        assert experiments.is_predictor_only(toy_predictor)
        result = experiments.run("sjeng_06", toy_predictor,
                                 outputs="mpki", **REGION)
        assert result.mpki_only is True
        full = experiments.run("sjeng_06", toy_predictor, cache=False,
                               **REGION)
        assert result.mpki == full.mpki  # bit-identical outcomes

    def test_composes_into_spec_tokens(self, toy_predictor):
        token = experiments.spec_variant(toy_predictor, "mini")
        result = experiments.run("sjeng_06", token, **REGION)
        assert result.runahead is not None

    def test_addressable_from_the_cli(self, toy_predictor, capsys):
        code = cli.main(["run", "sjeng_06", "--predictor", toy_predictor,
                         "--config", "none", "--instructions", "800",
                         "--warmup", "400"])
        assert code == 0
        assert "sjeng_06" in capsys.readouterr().out

    def test_listed_by_repro_list(self, toy_predictor, capsys):
        assert cli.main(["list", "--kind", "predictors"]) == 0
        out = capsys.readouterr().out
        assert "toy-taken" in out and "always-taken toy baseline" in out

    def test_toy_benchmark_round_trip(self):
        from repro.workloads.stress import many_branches

        @register_benchmark("toy-bench", suite="test", extra=True)
        def build():
            return many_branches()

        try:
            result = experiments.run("toy-bench", "tage64", **REGION)
            assert result.program_name
            # extra benchmarks never leak into the paper's figure list
            assert "toy-bench" not in suite.BENCHMARK_NAMES
            assert "toy-bench" in suite.all_names()
        finally:
            unregister_benchmark("toy-bench")

    def test_toy_variant_round_trip(self):
        @register_variant("toy-variant")
        def toy_variant():
            return dict(predictor=AlwaysTakenPredictor())

        try:
            result = experiments.run("sjeng_06", "toy-variant", **REGION)
            assert result.mpki > 0
            assert not experiments.is_predictor_only("toy-variant")
        finally:
            BR_VARIANTS.unregister("toy-variant")
