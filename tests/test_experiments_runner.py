"""Tests for the parallel experiment runner and the bench harness."""

import json

import pytest

from repro.sim import bench, experiments


REGION = dict(instructions=1_200, warmup=600)


def strip(payload):
    clean = json.loads(json.dumps(payload))
    clean.get("stats", {}).pop("host", None)
    return clean


@pytest.fixture(autouse=True)
def fresh_caches():
    experiments.clear_caches()
    yield
    experiments.clear_caches()


class TestRunCells:
    CELLS = [("sjeng_06", "tage64"), ("sjeng_06", "mini"),
             ("mcf_17", "tage64"), ("mcf_17", "mini")]

    def test_serial_preserves_cell_order(self):
        rows = experiments.run_cells(self.CELLS, jobs=1, **REGION)
        assert [(r["benchmark"], r["variant"]) for r in rows] == self.CELLS

    def test_trace_cache_hits_within_benchmark(self):
        rows = experiments.run_cells(self.CELLS, jobs=1, **REGION)
        # first variant of each benchmark records, the second replays
        assert [r["trace_cache_hit"] for r in rows] == \
            [False, True, False, True]

    def test_parallel_equals_serial(self):
        serial = experiments.run_cells(self.CELLS, jobs=1, **REGION)
        experiments.clear_caches()
        parallel = experiments.run_cells(self.CELLS, jobs=2, chunksize=2,
                                         **REGION)
        assert [(r["benchmark"], r["variant"]) for r in parallel] == \
            self.CELLS
        for left, right in zip(serial, parallel):
            assert strip(left["payload"]) == strip(right["payload"])

    def test_run_matrix_shape(self):
        matrix = experiments.run_matrix(variants=["tage64", "mini"],
                                        benchmarks=["sjeng_06"], jobs=1,
                                        **REGION)
        assert list(matrix) == ["sjeng_06"]
        assert sorted(matrix["sjeng_06"]) == ["mini", "tage64"]
        payload = matrix["sjeng_06"]["mini"]
        assert payload["branch_runahead"] is True
        assert payload["benchmark"] == "sjeng_06"


class TestSpecVariants:
    def test_token_round_trip(self):
        token = experiments.spec_variant("tage80", "mini")
        assert token == "spec:tage80+mini"
        kwargs = experiments.variant_kwargs(token)
        assert kwargs["predictor"].name
        assert kwargs["br_config"] is not None

    def test_baseline_token_has_no_config(self):
        kwargs = experiments.variant_kwargs(
            experiments.spec_variant("mtage"))
        assert "br_config" not in kwargs

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            experiments.spec_variant("nosuch")
        with pytest.raises(KeyError):
            experiments.spec_variant("tage64", "nosuch")

    def test_spec_run_matches_named_variant(self):
        named = experiments.run("sjeng_06", "mini", **REGION)
        spec = experiments.run("sjeng_06",
                               experiments.spec_variant("tage64", "mini"),
                               **REGION)
        assert strip(named.to_dict()) == strip(spec.to_dict())


class TestResultCacheLru:
    def test_cache_is_bounded(self, monkeypatch):
        # the bound is read from the environment at call time, not import
        monkeypatch.setenv("REPRO_CACHE_SIZE", "2")
        for variant in ("tage64", "tage80", "mtage", "core_only"):
            experiments.run("sjeng_06", variant, **REGION)
        assert len(experiments._cache) == 2

    def test_eviction_is_lru_ordered(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SIZE", "2")
        first = experiments.run("sjeng_06", "tage64", **REGION)
        experiments.run("sjeng_06", "tage80", **REGION)
        # touch tage64 so tage80 is now the least recently used
        assert experiments.run("sjeng_06", "tage64", **REGION) is first
        experiments.run("sjeng_06", "mtage", **REGION)
        keys = [key[1] for key in experiments._cache]
        assert "tage64" in keys and "tage80" not in keys

    def test_cache_false_bypasses_storage(self):
        result = experiments.run("sjeng_06", "tage64", cache=False,
                                 **REGION)
        assert len(experiments._cache) == 0
        again = experiments.run("sjeng_06", "tage64", cache=False,
                                **REGION)
        assert again is not result
        assert strip(again.to_dict()) == strip(result.to_dict())


class TestBenchHarness:
    def test_payload_digest_ignores_host_timings(self):
        first = experiments.run("sjeng_06", "tage64", cache=False,
                                **REGION).to_dict()
        experiments.clear_caches()
        second = experiments.run("sjeng_06", "tage64", cache=False,
                                 **REGION).to_dict()
        assert first["stats"]["host"] != second["stats"]["host"]
        assert bench.payload_digest(first) == bench.payload_digest(second)

    def test_run_bench_report_schema_and_drift(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64", "mini"], jobs=1,
                                 **REGION)
        assert report["schema"] == bench.SCHEMA
        assert report["cells"] == 2
        assert report["drift"] == {"ok": True, "mismatched_cells": []}
        assert report["optimized"]["trace_cache_hits"] == 1
        assert set(report["digests"]) == \
            {"sjeng_06/tage64", "sjeng_06/mini"}
        assert report["baseline"]["wall_seconds"] > 0
        assert report["optimized"]["uops_per_second"] > 0
        assert "timing" in report["baseline"]["host_phase_seconds"]

    def test_quick_matrix_defaults(self):
        report = bench.run_bench(quick=True, instructions=800, warmup=400,
                                 jobs=1)
        assert report["quick"] is True
        assert report["benchmarks"] == bench.QUICK_BENCHMARKS
        assert report["variants"] == bench.QUICK_VARIANTS
        assert report["drift"]["ok"]

    def test_format_report_mentions_drift(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64"], jobs=1, **REGION)
        text = bench.format_report(report)
        assert "speedup" in text and "drift" in text
        report["drift"] = {"ok": False, "mismatched_cells": ["x/y"]}
        assert "MISMATCH" in bench.format_report(report)


class TestBenchV2:
    def test_mpki_replay_pass_reported(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64", "mini"], jobs=1,
                                 **REGION)
        replay = report["mpki_replay"]
        assert replay["cells"] == 1  # only tage64 is predictor-only
        assert replay["wall_seconds"] > 0
        assert replay["speedup"] > 0
        assert report["drift"]["ok"]  # includes the exact-MPKI gate
        assert "mpki-only" in bench.format_report(report)

    def test_no_predictor_only_cells_skips_replay_pass(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["mini"], jobs=1, **REGION)
        assert report["mpki_replay"] is None
        assert "mpki-only" not in bench.format_report(report)

    def test_hit_rate_on_summary_line(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64", "mini"], jobs=1,
                                 **REGION)
        assert report["optimized"]["trace_cache_hit_rate"] == 0.5
        first_line = bench.format_report(report).splitlines()[0]
        assert "trace-cache hit rate 50%" in first_line

    def test_resolve_jobs_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert bench.resolve_jobs(None) == 4
        assert bench.resolve_jobs(2) == 2  # explicit beats the env var
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert bench.resolve_jobs(None) == 1
        monkeypatch.delenv("REPRO_JOBS")
        assert bench.resolve_jobs(None) == 1

    def test_quick_honours_repro_jobs_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        report = bench.run_bench(quick=True, benchmarks=["sjeng_06"],
                                 instructions=800, warmup=400)
        assert report["jobs"] == 1

    def test_compare_to_baseline_warns_on_regression(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64"], jobs=1, **REGION)
        assert bench.compare_to_baseline(report, report) == []
        inflated = json.loads(json.dumps(report))
        inflated["baseline"]["uops_per_second"] *= 10
        warnings = bench.compare_to_baseline(report, inflated)
        assert len(warnings) == 1
        assert "below the committed baseline" in warnings[0]

    def test_compare_to_baseline_tolerates_old_schema(self):
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64"], jobs=1, **REGION)
        assert bench.compare_to_baseline(report, {"schema": "v0"}) == []
