"""Unit tests for the micro-op ISA: registers, uops, and the assembler."""

import pytest

from repro.isa import uop as U
from repro.isa.program import DATA_BASE, ProgramBuilder
from repro.isa.registers import (
    CC,
    NUM_ARCH_REGS,
    NUM_GPRS,
    parse_reg,
    reg_bit,
    reg_name,
)
from repro.isa.uop import Uop, evaluate_condition


class TestRegisters:
    def test_register_count(self):
        assert NUM_ARCH_REGS == NUM_GPRS + 1
        assert CC == NUM_GPRS

    def test_names_roundtrip(self):
        for index in range(NUM_ARCH_REGS):
            assert parse_reg(reg_name(index)) == index

    def test_cc_name(self):
        assert reg_name(CC) == "CC"

    def test_invalid_index_raises(self):
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            reg_name(-1)

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError):
            parse_reg("R99")
        with pytest.raises(ValueError):
            parse_reg("X0")

    def test_reg_bit_distinct(self):
        bits = {reg_bit(i) for i in range(NUM_ARCH_REGS)}
        assert len(bits) == NUM_ARCH_REGS

    def test_reg_bit_out_of_range(self):
        with pytest.raises(ValueError):
            reg_bit(NUM_ARCH_REGS)


class TestUop:
    def test_alu_src_dst(self):
        op = Uop(U.ADD, dst=3, srcs=(1, 2))
        assert op.dst_regs == (3,)
        assert op.src_regs == (1, 2)
        assert not op.is_branch and not op.is_mem

    def test_cmp_writes_cc(self):
        op = Uop(U.CMP, srcs=(1, 2))
        assert op.dst_regs == (CC,)

    def test_branch_reads_cc(self):
        op = Uop(U.BR, cond=U.EQ, target=5)
        assert CC in op.src_regs
        assert op.is_cond_branch and op.is_branch

    def test_jmp_is_branch_but_not_conditional(self):
        op = Uop(U.JMP, target=0)
        assert op.is_branch and not op.is_cond_branch

    def test_load_sources_include_base_and_index(self):
        op = Uop(U.LD, dst=4, base=1, index=2, scale=8, disp=16)
        assert set(op.src_regs) == {1, 2}
        assert op.is_load and op.is_mem and not op.is_store

    def test_store_sources(self):
        op = Uop(U.ST, srcs=(5,), base=1)
        assert set(op.src_regs) == {5, 1}
        assert op.is_store and op.dst_regs == ()

    def test_div_not_chainable(self):
        assert not Uop(U.DIV, dst=0, srcs=(1, 2)).is_chainable()
        assert not Uop(U.MOD, dst=0, srcs=(1, 2)).is_chainable()

    def test_common_ops_chainable(self):
        assert Uop(U.ADD, dst=0, srcs=(1, 2)).is_chainable()
        assert Uop(U.LD, dst=0, base=1).is_chainable()
        assert Uop(U.CMPI, srcs=(1,), imm=3).is_chainable()

    def test_latency_table_complete(self):
        for opcode in range(len(U.OPCODE_NAMES)):
            assert opcode in U.OPCODE_LATENCY

    def test_repr_is_readable(self):
        op = Uop(U.LD, dst=4, base=1, index=2, scale=8, disp=16)
        op.pc = 7
        text = repr(op)
        assert "LD" in text and "R4" in text


class TestConditions:
    @pytest.mark.parametrize("cond,cc,expected", [
        (U.EQ, 0, True), (U.EQ, 1, False),
        (U.NE, 0, False), (U.NE, -1, True),
        (U.LT, -1, True), (U.LT, 0, False),
        (U.LE, 0, True), (U.LE, 1, False),
        (U.GT, 1, True), (U.GT, 0, False),
        (U.GE, 0, True), (U.GE, -1, False),
    ])
    def test_evaluate(self, cond, cc, expected):
        assert evaluate_condition(cond, cc) is expected

    def test_invalid_condition(self):
        with pytest.raises(ValueError):
            evaluate_condition(99, 0)


class TestProgramBuilder:
    def test_register_allocation_by_name(self):
        b = ProgramBuilder()
        r0 = b.reg("a")
        r1 = b.reg("b")
        assert r0 != r1
        assert b.reg("a") == r0  # lookup, not re-allocation

    def test_register_exhaustion(self):
        b = ProgramBuilder()
        for i in range(NUM_GPRS):
            b.reg(f"r{i}")
        with pytest.raises(RuntimeError):
            b.reg("one_too_many")

    def test_data_placement(self):
        b = ProgramBuilder()
        base = b.data("arr", [10, 20, 30])
        assert base == DATA_BASE
        b.halt()
        program = b.build()
        assert program.initial_memory[base] == 10
        assert program.initial_memory[base + 2] == 30

    def test_data_arrays_do_not_overlap(self):
        b = ProgramBuilder()
        a = b.data("a", [1, 2, 3])
        c = b.zeros("c", 5)
        assert c >= a + 3
        assert b.data_base("a") == a

    def test_label_resolution(self):
        b = ProgramBuilder()
        x = b.reg("x")
        b.movi(x, 0)
        b.label("top")
        b.addi(x, x, 1)
        b.cmpi(x, 10)
        b.br("lt", "top")
        b.halt()
        program = b.build()
        branch = program.uops[3]
        assert branch.target == 1  # "top" is the ADDI

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_pcs_assigned_sequentially(self):
        b = ProgramBuilder()
        x = b.reg("x")
        b.movi(x, 1)
        b.addi(x, x, 1)
        b.halt()
        program = b.build()
        assert [op.pc for op in program.uops] == [0, 1, 2]

    def test_listing_contains_all_uops(self):
        b = ProgramBuilder()
        x = b.reg("x")
        b.movi(x, 1)
        b.halt()
        listing = b.build().listing()
        assert "MOVI" in listing and "HALT" in listing
