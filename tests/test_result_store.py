"""Tests for the content-addressed sweep result store (``repro.sched.store``).

Mirrors ``tests/test_trace_cache_disk.py``: entries are keyed by content
(config fingerprint + cell identity), survive process boundaries, and any
form of file damage — truncation, garbage, version skew, digest mismatch,
key collision — must read back as a clean counted miss, never a crash.
"""

import multiprocessing
import pickle

import pytest

from repro.config import RunConfig
from repro.sched import RESULT_FORMAT_VERSION, ResultStore, result_key


def make_key(variant="spec:tage64+none", benchmark="sjeng_06",
             mode="full"):
    config = RunConfig(instructions=800, warmup=400)
    return result_key(config.fingerprint(), benchmark, variant,
                      config.instructions, config.warmup, mode)


def sample_record(benchmark="sjeng_06", variant="spec:tage64+none"):
    return {"benchmark": benchmark, "variant": variant,
            "payload": {"mpki": 12.5, "ipc": 0.91},
            "registry_state": [("core.cycles", 1234)]}


class TestKeying:
    def test_key_is_deterministic(self):
        assert make_key() == make_key()

    def test_key_varies_by_every_component(self):
        base = make_key()
        assert make_key(benchmark="mcf_06") != base
        assert make_key(variant="spec:gshare+none") != base
        assert make_key(mode="mpki") != base

    def test_key_varies_by_config_fingerprint(self):
        a = RunConfig(instructions=800, warmup=400)
        b = RunConfig(instructions=900, warmup=400)
        assert result_key(a.fingerprint(), "sjeng_06", "mini", 800, 400,
                          "full") != \
            result_key(b.fingerprint(), "sjeng_06", "mini", 900, 400,
                       "full")


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = make_key()
        assert store.put(key, sample_record()) is True
        record = store.get(key)
        assert record is not None
        assert record["payload"] == {"mpki": 12.5, "ipc": 0.91}
        assert record["key"] == key
        assert store.hits == 1 and store.stores == 1

    def test_fresh_store_reads_prior_writes(self, tmp_path):
        writer = ResultStore(str(tmp_path))
        key = make_key()
        writer.put(key, sample_record())
        reader = ResultStore(str(tmp_path))
        assert reader.get(key) is not None
        assert reader.hits == 1

    def test_missing_key_counts_miss_not_corrupt(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get(make_key()) is None
        assert store.misses == 1
        assert store.corrupt_entries == 0

    def test_put_skips_existing_entry(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = make_key()
        assert store.put(key, sample_record()) is True
        assert store.put(key, sample_record(variant="other")) is False
        assert store.stores == 1
        assert store.get(key)["variant"] == "spec:tage64+none"

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(make_key(), sample_record())
        assert [p.suffix for p in tmp_path.iterdir()] == [".result"]

    def test_unwritable_dir_counts_store_error(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        store = ResultStore(str(blocked))
        assert store.put(make_key(), sample_record()) is False
        assert store.stores == 0
        assert store.store_errors == 1


class TestCorruptionHandling:
    def _stored_path(self, tmp_path, key):
        store = ResultStore(str(tmp_path))
        store.put(key, sample_record())
        (path,) = tmp_path.glob("*.result")
        return path

    @pytest.mark.parametrize("damage", [
        lambda blob: blob[: len(blob) // 2],          # truncated payload
        lambda blob: b"",                              # empty file
        lambda blob: b"garbage" * 10,                  # wrong magic
        lambda blob: blob[:4]
        + (RESULT_FORMAT_VERSION + 1).to_bytes(2, "little")
        + blob[6:],                                    # version skew
        # header is 38 bytes (magic + u16 version + sha256), so this
        # flips the first payload byte: the digest check must catch it
        lambda blob: blob[:38] + bytes([blob[38] ^ 0xFF]) + blob[39:],
    ])
    def test_damaged_file_is_clean_miss(self, tmp_path, damage):
        key = make_key()
        path = self._stored_path(tmp_path, key)
        path.write_bytes(damage(path.read_bytes()))
        reader = ResultStore(str(tmp_path))
        assert reader.get(key) is None
        assert reader.corrupt_entries == 1
        assert reader.misses == 1
        assert not path.exists()  # offender deleted so resume recomputes

    def test_embedded_key_mismatch_is_corrupt(self, tmp_path):
        # a renamed/copied entry must not resume the wrong cell
        key = make_key()
        other = make_key(benchmark="mcf_06")
        path = self._stored_path(tmp_path, key)
        store = ResultStore(str(tmp_path))
        path.rename(store.path_for(other))
        assert store.get(other) is None
        assert store.corrupt_entries == 1

    def test_valid_pickle_wrong_digest_is_corrupt(self, tmp_path):
        key = make_key()
        path = self._stored_path(tmp_path, key)
        blob = path.read_bytes()
        # splice a different (valid) pickle under the original digest
        forged = pickle.dumps({"key": key, "payload": None},
                              protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(blob[:38] + forged)
        reader = ResultStore(str(tmp_path))
        assert reader.get(key) is None
        assert reader.corrupt_entries == 1


def _race_writer(args):
    directory, key, worker = args
    store = ResultStore(directory)
    record = sample_record()
    record["payload"] = {"mpki": 12.5, "ipc": 0.91, "writer": worker}
    wrote = store.put(key, record)
    got = store.get(key)
    return wrote, got is not None, store.corrupt_entries


class TestConcurrentWriters:
    def test_racing_writers_never_expose_partial_entries(self, tmp_path):
        # many processes hammer the same key: same-directory temp file +
        # atomic rename means every reader sees a whole record, exactly
        # one logical entry survives, and no .tmp.* litter remains
        key = make_key()
        with multiprocessing.Pool(4) as pool:
            outcomes = pool.map(
                _race_writer,
                [(str(tmp_path), key, worker) for worker in range(8)])
        assert all(readable for _, readable, _ in outcomes)
        assert all(corrupt == 0 for _, _, corrupt in outcomes)
        entries = list(tmp_path.iterdir())
        assert [p.suffix for p in entries] == [".result"]
        record = ResultStore(str(tmp_path)).get(key)
        assert record["payload"]["mpki"] == 12.5

    def test_stats_carry_all_counters(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(make_key(), sample_record())
        assert set(store.stats()) == {"hits", "misses", "stores",
                                      "store_errors", "corrupt_entries"}
