"""Tests for the unified telemetry subsystem (registry, tracer, timers)."""

import json

import pytest

from repro.core import config as br_config
from repro.sim.simulator import simulate
from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    PhaseTimers,
    StatRegistry,
    TraceEvent,
    Tracer,
    Telemetry,
    iter_named,
)
from repro.uarch.core import CoreModel
from repro.uarch.stats import CoreStats
from repro.workloads import suite


class TestStatRegistry:
    def test_counter_accumulates(self):
        registry = StatRegistry()
        counter = registry.counter("core.fetch.mispredicts")
        counter.add()
        counter.add(4)
        assert registry.counter("core.fetch.mispredicts").value == 5

    def test_get_or_create_returns_same_object(self):
        registry = StatRegistry()
        assert registry.gauge("pq.occupancy") is registry.gauge(
            "pq.occupancy")

    def test_kind_conflict_raises(self):
        registry = StatRegistry()
        registry.counter("dce.chains.launched")
        with pytest.raises(TypeError):
            registry.gauge("dce.chains.launched")

    def test_malformed_name_rejected(self):
        registry = StatRegistry()
        with pytest.raises(ValueError):
            registry.counter("")
        with pytest.raises(ValueError):
            registry.counter(".leading")

    def test_scope_prefixes_names(self):
        registry = StatRegistry()
        scope = registry.scope("core").scope("fetch")
        scope.counter("mispredicts").add(2)
        assert "core.fetch.mispredicts" in registry
        assert registry.counter("core.fetch.mispredicts").value == 2

    def test_nested_dict_export(self):
        registry = StatRegistry()
        registry.counter("core.fetch.mispredicts").add(3)
        registry.gauge("core.ipc").set(1.5)
        tree = registry.to_dict()
        assert tree["core"]["fetch"]["mispredicts"] == 3
        assert tree["core"]["ipc"] == 1.5

    def test_leaf_and_namespace_collision_keeps_both(self):
        registry = StatRegistry()
        registry.counter("pq.occupancy").add(7)
        registry.counter("pq.occupancy.samples").add(2)
        tree = registry.to_dict()
        assert tree["pq"]["occupancy"]["_value"] == 7
        assert tree["pq"]["occupancy"]["samples"] == 2

    def test_json_round_trips(self):
        registry = StatRegistry()
        registry.counter("a.b").add(1)
        registry.histogram("a.h").record(3)
        assert json.loads(registry.to_json())["a"]["b"] == 1

    def test_merge_semantics(self):
        left, right = StatRegistry(), StatRegistry()
        left.counter("n").add(2)
        right.counter("n").add(3)
        left.gauge("g").set(1.0)
        right.gauge("g").set(9.0)
        left.histogram("h").record(1)
        right.histogram("h").record_many([2, 3])
        right.counter("only_right").add(5)
        left.merge(right)
        assert left.counter("n").value == 5          # counters add
        assert left.gauge("g").value == 9.0          # gauges take newest
        assert left.histogram("h").values == [1, 2, 3]  # histograms concat
        assert left.counter("only_right").value == 5

    def test_merge_kind_conflict_raises(self):
        left, right = StatRegistry(), StatRegistry()
        left.counter("x")
        right.gauge("x").set(1)
        with pytest.raises(TypeError):
            left.merge(right)


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        registry = StatRegistry()
        histogram = registry.histogram("h")
        histogram.record_many(range(1, 101))  # 1..100
        assert histogram.percentile(50) == 50
        assert histogram.percentile(90) == 90
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1

    def test_empty_histogram_exports_zeros(self):
        histogram = StatRegistry().histogram("h")
        export = histogram.export()
        assert export["count"] == 0 and export["p99"] == 0
        assert histogram.percentile(50) == 0

    def test_export_summary(self):
        histogram = StatRegistry().histogram("h")
        histogram.record_many([2, 4, 6])
        export = histogram.export()
        assert export["count"] == 3
        assert export["mean"] == 4.0
        assert export["min"] == 2 and export["max"] == 6

    def test_percentile_out_of_range(self):
        histogram = StatRegistry().histogram("h")
        histogram.record(1)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestTracer:
    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for cycle in range(5):
            tracer.emit("tick", "core", cycle)
        assert len(tracer) == 3
        assert tracer.emitted == 5
        assert tracer.dropped == 2
        assert [event.cycle for event in tracer.events()] == [2, 3, 4]

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        tracer.emit("chain_launch", "dce", 10, pc=0x40, length=5)
        tracer.emit("chain_complete", "dce", 10, duration=7, pc=0x40,
                    outcome=True)
        parsed = Tracer.parse_jsonl(tracer.to_jsonl())
        assert parsed == tracer.events()

    def test_chrome_trace_shapes(self):
        tracer = Tracer()
        tracer.emit("pq_override", "pq", 5, pc=0x10)
        tracer.emit("chain_complete", "dce", 5, duration=3)
        chrome = tracer.to_chrome_trace()
        events = [event for event in chrome["traceEvents"]
                  if event["ph"] != "M"]
        instant, complete = events
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert complete["ph"] == "X" and complete["dur"] == 3
        # category tracks are named via metadata events
        names = [event["args"]["name"] for event in chrome["traceEvents"]
                 if event["ph"] == "M"]
        assert "dce" in names and "pq" in names

    def test_write_and_reload(self, tmp_path):
        tracer = Tracer()
        tracer.emit("fetch", "core", 1, pc=2)
        chrome_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        tracer.write(str(chrome_path), fmt="chrome")
        tracer.write(str(jsonl_path), fmt="jsonl")
        assert json.loads(chrome_path.read_text())["traceEvents"]
        assert Tracer.parse_jsonl(jsonl_path.read_text()) == tracer.events()
        with pytest.raises(ValueError):
            tracer.write(str(chrome_path), fmt="xml")

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("x", "core", 0)
        assert len(NULL_TRACER) == 0 and NULL_TRACER.events() == []

    def test_iter_named(self):
        tracer = Tracer()
        tracer.emit("a", "core", 0)
        tracer.emit("b", "core", 1)
        tracer.emit("a", "core", 2)
        assert [event.cycle
                for event in iter_named(tracer.events(), "a")] == [0, 2]


class TestPhaseTimers:
    def test_phase_accumulates(self):
        timers = PhaseTimers()
        with timers.phase("setup"):
            pass
        with timers.phase("setup"):
            pass
        assert timers.elapsed("setup") >= 0.0
        assert set(timers.to_dict()) == {"setup"}

    def test_wrap_iter_attributes_producer_time(self):
        timers = PhaseTimers()
        assert list(timers.wrap_iter("emulation", iter(range(3)))) \
            == [0, 1, 2]
        assert timers.elapsed("emulation") >= 0.0

    def test_register_into(self):
        registry = StatRegistry()
        timers = PhaseTimers()
        timers.add("timing", 1.25)
        timers.register_into(registry.scope("host.phase"))
        assert registry.gauge("host.phase.timing_seconds").value == 1.25


class TestCoreStatsTelemetry:
    def test_hardest_branches_ties_break_on_pc(self):
        stats = CoreStats()
        # insert in an order that would betray dict-order dependence
        for pc in (0x30, 0x10, 0x20):
            stats.branch_mispredicts[pc] = 5
        stats.branch_mispredicts[0x40] = 9
        assert stats.hardest_branches(3) == [0x40, 0x10, 0x20]

    def test_register_into_namespaces(self):
        stats = CoreStats()
        stats.instructions = 1000
        stats.cycles = 500
        stats.mispredicts = 7
        registry = StatRegistry()
        stats.register_into(registry.scope("core"))
        assert registry.counter("core.fetch.mispredicts").value == 7
        assert registry.gauge("core.ipc").value == 2.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def traced_result(self):
        tracer = Tracer(capacity=50_000)
        program = suite.load("mcf_06")
        return simulate(program, instructions=3000, warmup=1500,
                        br_config=br_config.mini(), tracer=tracer), tracer

    def test_registry_covers_required_namespaces(self, traced_result):
        result, _ = traced_result
        tree = result.to_dict()["stats"]
        for namespace in ("core", "predictor", "dce", "pq", "runahead",
                          "memsys", "host"):
            assert namespace in tree, f"missing {namespace}.*"
        assert tree["core"]["instructions"] == 3000
        assert tree["pq"]["queues_assigned"] >= 1
        assert tree["host"]["phase"]["timing_seconds"] > 0.0

    def test_trace_contains_pipeline_events(self, traced_result):
        _, tracer = traced_result
        names = {event.name for event in tracer.events()}
        assert {"fetch", "retire", "branch_resolve", "chain_launch",
                "chain_complete", "pq_push", "pq_pop",
                "cache_miss"} <= names

    def test_build_registry_is_idempotent(self, traced_result):
        result, _ = traced_result
        first = result.build_registry()
        again = result.build_registry()
        assert again is first

    def test_disabled_tracing_makes_no_emit_calls(self, monkeypatch):
        def forbidden(self, *args, **kwargs):
            raise AssertionError("NullTracer.emit called on hot path")
        monkeypatch.setattr(NullTracer, "emit", forbidden)
        program = suite.load("sjeng_06")
        result = simulate(program, instructions=600, warmup=300,
                          br_config=br_config.mini())
        assert result.core.instructions == 600

    def test_disabled_tracer_flag_checked_once(self):
        core = CoreModel()
        assert core._tracing is False
        assert core.tracer is NULL_TRACER

    def test_telemetry_bundle_defaults(self):
        bundle = Telemetry()
        assert bundle.tracer is NULL_TRACER
        assert isinstance(bundle.registry, StatRegistry)


class TestTraceEvent:
    def test_dict_round_trip(self):
        event = TraceEvent("resync", "runahead", 42, None, {"pc": 7})
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_repr_mentions_span(self):
        event = TraceEvent("chain_complete", "dce", 10, 4)
        assert "+4" in repr(event)
