"""Tests for the dependence chain cache (§4.2)."""

import pytest

from repro.core.chain import TERMINATED_SELF, WILDCARD, DependenceChain
from repro.core.chain_cache import ChainCache
from repro.isa import uop as U
from repro.isa.uop import Uop


def make_chain(branch_pc, tag):
    branch = Uop(U.BR, cond=U.EQ, target=0)
    branch.pc = branch_pc
    return DependenceChain(
        branch_pc=branch_pc,
        branch_uop=branch,
        tag=tag,
        exec_uops=[branch],
        timed_flags=[True],
        live_ins=(),
        live_outs=(),
        pair_map={},
        terminated_by=TERMINATED_SELF,
    )


class TestInstallAndMatch:
    def test_wildcard_matches_both_outcomes(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        assert len(cache.matching(0x10, True)) == 1
        assert len(cache.matching(0x10, False)) == 1

    def test_exact_tag_matches_one_outcome(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x20, (0x10, 0)))  # trigger: 0x10 not-taken
        assert len(cache.matching(0x10, False)) == 1
        assert cache.matching(0x10, True) == []

    def test_multiple_chains_per_trigger(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        cache.install(make_chain(0x20, (0x10, 0)))
        matched = cache.matching(0x10, False)
        assert {chain.branch_pc for chain in matched} == {0x10, 0x20}

    def test_reinstall_replaces(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        assert len(cache) == 1

    def test_hit_miss_stats(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        cache.matching(0x10, True)
        cache.matching(0x99, True)
        assert cache.hits == 1 and cache.misses == 1


class TestLru:
    def test_eviction_order(self):
        cache = ChainCache(2)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        cache.install(make_chain(0x20, (0x20, WILDCARD)))
        cache.matching(0x10, True)  # touch 0x10
        cache.install(make_chain(0x30, (0x30, WILDCARD)))
        assert cache.matching(0x20, True) == []  # 0x20 evicted
        assert len(cache.matching(0x10, True)) == 1
        assert cache.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ChainCache(0)


class TestQueries:
    def test_covered_branches(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        cache.install(make_chain(0x20, (0x10, 1)))
        assert cache.covered_branches() == {0x10, 0x20}

    def test_wildcard_chains_for(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x10, (0x10, WILDCARD)))
        cache.install(make_chain(0x20, (0x10, 1)))
        wild = cache.wildcard_chains_for(0x10)
        assert [chain.branch_pc for chain in wild] == [0x10]

    def test_remove_for_branch(self):
        cache = ChainCache(8)
        cache.install(make_chain(0x20, (0x10, 1)))
        cache.install(make_chain(0x20, (0x20, WILDCARD)))
        cache.install(make_chain(0x30, (0x30, WILDCARD)))
        removed = cache.remove_for_branch(0x20)
        assert removed == 2
        assert cache.covered_branches() == {0x30}
