"""Randomized differential suite for the columnar TAGE batch kernel.

The contract (DESIGN.md §6a.5): for pristine TAGE / TAGE-SC-L lanes,
:func:`repro.predictors.batched.replay_lanes` with the columnar kernel
engaged must return mispredicted-PC sequences **bit-identical** to the
reference per-object predictor spellings
(:class:`~repro.predictors.reference.ReferenceTagePredictor`,
:class:`~repro.predictors.reference.ReferenceTageSCL`) driven one event
at a time.  The scenarios below deliberately provoke the corners where a
vectorized reimplementation drifts first:

* graceful useful-reset boundaries (tiny ``useful_reset_period`` so the
  stream crosses many resets in both phase polarities);
* allocation storms with multi-candidate LFSR tie-breaks (tiny tables
  and tags, so every lane allocates constantly);
* newly-allocated weak providers exercising the alternate-prediction /
  ``use_alt_on_na`` automaton;
* warmup truncation (split at 0, mid-stream, and the full stream).

Streams come from seeded ``random.Random`` instances, so the suite is
deterministic under any ``PYTHONHASHSEED`` (CI runs it under 0 and
1042 explicitly).  Mixed geometries always replay through **one**
``replay_lanes`` call — grouping, per-group engines, and cross-group
state isolation are part of what is under test.
"""

import random

import pytest

from repro.predictors import tage_batch
from repro.predictors.batched import BACKEND_ENV, _lockstep, replay_lanes
from repro.predictors.loop_predictor import LoopPredictor
from repro.predictors.reference import (
    ReferenceLoopPredictor,
    ReferenceStatisticalCorrector,
    ReferenceTagePredictor,
    ReferenceTageSCL,
)
from repro.predictors.statistical_corrector import StatisticalCorrector
from repro.predictors.tage import TageConfig, TagePredictor
from repro.predictors.tage_scl import TageSCL

try:
    import numpy  # noqa: F401
    BACKENDS = ["pure", "numpy"]
    HAVE_NUMPY = True
except ImportError:  # CI's no-numpy leg
    BACKENDS = ["pure"]
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="columnar kernel needs numpy")

SEEDS = [0, 1042]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, request.param)
    return request.param


def tiny_cfg(**overrides):
    """A small TAGE geometry that still exercises every table mechanism."""
    knobs = dict(num_tables=5, table_size_log2=6, tag_bits=7,
                 counter_bits=3, useful_bits=2, min_history=2,
                 max_history=40, base_size_log2=7,
                 useful_reset_period=1 << 16)
    knobs.update(overrides)
    return TageConfig(**knobs)


def loopy_stream(events, seed, static_pcs=24):
    """Random branches plus two fixed-trip loop branches.

    The loop branches (taken ``trip - 1`` times, then not-taken) are what
    drives the loop predictor through allocation, confidence ramp, and
    confident overrides; the random remainder keeps TAGE allocating.
    """
    rng = random.Random(seed)
    loops = ((0x900, 7), (0x904, 3))
    iteration = {pc: 0 for pc, _ in loops}
    pc_column, taken_column = [], []
    for _ in range(events):
        roll = rng.random()
        if roll < 0.3:
            pc, trip = loops[rng.randrange(len(loops))]
            iteration[pc] += 1
            taken = iteration[pc] % trip != 0
        else:
            pc = 0x400 + rng.randrange(static_pcs) * 4
            bias = 0.8 if pc & 8 else 0.5  # some biased, some coin-flip
            taken = rng.random() < bias
        pc_column.append(pc)
        taken_column.append(int(taken))
    return pc_column, taken_column


def reference_lanes(predictors, pcs, takens, split):
    """Drive reference predictor objects scalar; mirror of the replay loop."""
    lanes = [[] for _ in predictors]
    for position, (pc, taken) in enumerate(zip(pcs, takens)):
        taken = bool(taken)
        for predictor, lane in zip(predictors, lanes):
            if predictor.observe(pc, taken) != taken and position >= split:
                lane.append(pc)
    return lanes


def scl_lanes(cfg_builder):
    """Matched (packed, reference) TAGE-SC-L builders from shared knobs."""
    def packed():
        return TageSCL(tage_config=cfg_builder(),
                       loop=LoopPredictor(size_log2=4),
                       corrector=StatisticalCorrector(
                           history_lengths=(2, 4, 7), table_size_log2=6))

    def reference():
        return ReferenceTageSCL(tage_config=cfg_builder(),
                                loop=ReferenceLoopPredictor(size_log2=4),
                                corrector=ReferenceStatisticalCorrector(
                                    history_lengths=(2, 4, 7),
                                    table_size_log2=6))
    return packed, reference


class TestTageBatchDifferential:
    """Batched lanes vs reference objects, one replay_lanes call per case."""

    def run_case(self, lane_specs, pcs, takens, split, min_lanes=1):
        batch = replay_lanes([packed() for packed, _ in lane_specs],
                             pcs, takens, split, min_lanes=min_lanes)
        expected = reference_lanes([ref() for _, ref in lane_specs],
                                   pcs, takens, split)
        assert batch == expected
        return batch

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_geometries_one_batch_call(self, backend, seed):
        # three TAGE geometries (two groups) plus two TAGE-SC-L shapes and
        # an exact duplicate, replayed together in a single call
        specs = [
            (lambda: TagePredictor(tiny_cfg()),
             lambda: ReferenceTagePredictor(tiny_cfg())),
            (lambda: TagePredictor(tiny_cfg(counter_bits=2, useful_bits=1)),
             lambda: ReferenceTagePredictor(
                 tiny_cfg(counter_bits=2, useful_bits=1))),
            (lambda: TagePredictor(tiny_cfg(table_size_log2=5, num_tables=4)),
             lambda: ReferenceTagePredictor(
                 tiny_cfg(table_size_log2=5, num_tables=4))),
            scl_lanes(tiny_cfg),
            scl_lanes(lambda: tiny_cfg(tag_bits=6)),
            (lambda: TagePredictor(tiny_cfg()),  # duplicate of lane 0
             lambda: ReferenceTagePredictor(tiny_cfg())),
        ]
        pcs, takens = loopy_stream(3_000, seed)
        batch = self.run_case(specs, pcs, takens, split=500)
        if backend == "numpy":
            # equivalent configurations replay once; the duplicate lane
            # hands back the very same mispredict-list object
            assert batch[-1] is batch[0]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_graceful_reset_boundaries(self, backend, seed):
        # period 64 over 4000 events: ~60 resets, alternating the phase
        # mask between clearing the low and the high useful bit
        cfg = lambda: tiny_cfg(useful_reset_period=64)  # noqa: E731
        specs = [(lambda: TagePredictor(cfg()),
                  lambda: ReferenceTagePredictor(cfg())),
                 scl_lanes(cfg)]
        pcs, takens = loopy_stream(4_000, seed)
        self.run_case(specs, pcs, takens, split=700)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lfsr_allocation_ties(self, backend, seed):
        # 16-entry tables with 4-bit tags: constant aliasing, constant
        # mispredicts, so nearly every event allocates and most
        # allocations see several useful==0 candidates for the LFSR to
        # tie-break among
        cfg = lambda: tiny_cfg(table_size_log2=4, tag_bits=4,  # noqa: E731
                               num_tables=6, base_size_log2=5)
        specs = [(lambda: TagePredictor(cfg()),
                  lambda: ReferenceTagePredictor(cfg())),
                 (lambda: TagePredictor(cfg()),
                  lambda: ReferenceTagePredictor(cfg()))]
        pcs, takens = loopy_stream(2_500, seed, static_pcs=96)
        self.run_case(specs, pcs, takens, split=300)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_newly_allocated_weak_providers(self, backend, seed):
        # 5-bit tags alias enough that fresh allocations immediately
        # become providers with weak counters, keeping the alternate
        # prediction and the use_alt_on_na automaton hot
        cfg = lambda: tiny_cfg(tag_bits=5, table_size_log2=5)  # noqa: E731
        specs = [(lambda: TagePredictor(cfg()),
                  lambda: ReferenceTagePredictor(cfg())),
                 scl_lanes(cfg)]
        pcs, takens = loopy_stream(3_000, seed, static_pcs=64)
        self.run_case(specs, pcs, takens, split=400)

    @pytest.mark.parametrize("split_kind", ["none", "mid", "all"])
    def test_warmup_split_variants(self, backend, split_kind):
        pcs, takens = loopy_stream(1_500, seed=7)
        split = {"none": 0, "mid": 733, "all": len(pcs)}[split_kind]
        specs = [(lambda: TagePredictor(tiny_cfg()),
                  lambda: ReferenceTagePredictor(tiny_cfg())),
                 scl_lanes(tiny_cfg)]
        batch = self.run_case(specs, pcs, takens, split=split)
        if split_kind == "all":  # warmup-truncated: nothing measured
            assert batch == [[], []]

    def test_declined_geometry_falls_back(self, backend):
        # counter_bits=8 exceeds the kernel's int8 automaton domain: the
        # lane must decline to lockstep and still match the reference
        cfg = lambda: tiny_cfg(counter_bits=8)  # noqa: E731
        assert not tage_batch.supported(TagePredictor(cfg()))
        pcs, takens = loopy_stream(1_200, seed=3)
        self.run_case([(lambda: TagePredictor(cfg()),
                        lambda: ReferenceTagePredictor(cfg()))],
                      pcs, takens, split=200)


@needs_numpy
class TestMinLanesCutover:
    """The batch_min_lanes knob: explicit param > config layers > default.

    Whether the kernel engaged is observable from the outside: the
    columnar kernel keeps lane evolution in its own arrays (the instance
    stays pristine, ``_tick == 0``), while lockstep drives the instance's
    own tables (``_tick`` advances every update).
    """

    def replay(self, monkeypatch, min_lanes, env=None):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        if env is not None:
            monkeypatch.setenv("REPRO_BATCH_MIN_LANES", env)
        pcs, takens = loopy_stream(400, seed=11)
        predictor = TagePredictor(tiny_cfg())
        result, = replay_lanes([predictor], pcs, takens, split=100,
                               min_lanes=min_lanes)
        expected, = _lockstep([TagePredictor(tiny_cfg())],
                              pcs, takens, split=100)
        assert result == expected
        return predictor._tick

    def test_explicit_floor_engages_kernel(self, monkeypatch):
        assert self.replay(monkeypatch, min_lanes=1) == 0

    def test_below_floor_stays_lockstep(self, monkeypatch):
        assert self.replay(monkeypatch, min_lanes=99) > 0

    def test_env_floor_engages_kernel(self, monkeypatch):
        assert self.replay(monkeypatch, min_lanes=None, env="1") == 0

    def test_explicit_floor_beats_env(self, monkeypatch):
        assert self.replay(monkeypatch, min_lanes=99, env="1") > 0
