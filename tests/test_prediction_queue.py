"""Tests for the prediction queues (§4.2): pointers, recovery, throttling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction_queue import (
    INACTIVE,
    LATE,
    READY,
    PredictionQueue,
    PredictionQueueFile,
)


class TestSlotLifecycle:
    def test_consume_empty_is_inactive(self):
        queue = PredictionQueue(4)
        category, value = queue.consume(cycle=100)
        assert category == INACTIVE and value is None

    def test_allocate_fill_consume_ready(self):
        queue = PredictionQueue(4)
        slot = queue.allocate()
        queue.fill(slot, True, available_cycle=50)
        category, value = queue.consume(cycle=100)
        assert category == READY and value is True

    def test_unfilled_slot_is_late(self):
        queue = PredictionQueue(4)
        queue.allocate()
        category, value = queue.consume(cycle=100)
        assert category == LATE and value is None

    def test_not_yet_available_is_late_but_carries_value(self):
        """§4.2: a late slot is consumed, then filled for recovery use."""
        queue = PredictionQueue(4)
        slot = queue.allocate()
        queue.fill(slot, False, available_cycle=200)
        category, value = queue.consume(cycle=100)
        assert category == LATE and value is False

    def test_capacity_limit(self):
        queue = PredictionQueue(2)
        assert queue.allocate() >= 0
        assert queue.allocate() >= 0
        assert queue.allocate() == -1

    def test_retire_frees_capacity(self):
        queue = PredictionQueue(2)
        for _ in range(2):
            slot = queue.allocate()
            queue.fill(slot, True, 0)
        queue.consume(10)
        queue.retire_one()
        assert queue.allocate() >= 0

    def test_fifo_order(self):
        queue = PredictionQueue(4)
        first = queue.allocate()
        second = queue.allocate()
        queue.fill(first, True, 0)
        queue.fill(second, False, 0)
        assert queue.consume(10) == (READY, True)
        assert queue.consume(10) == (READY, False)

    def test_fill_after_flush_is_harmless(self):
        queue = PredictionQueue(4)
        slot = queue.allocate()
        queue.flush_unconsumed()
        queue.fill(slot, True, 0)  # chain finished after the flush
        assert queue.consume(10)[0] == INACTIVE


class TestRecovery:
    def test_checkpoint_restore_reinserts(self):
        """§4.2 Recovery: restoring the fetch pointer reinserts consumed
        predictions at their original positions."""
        queue = PredictionQueue(8)
        for value in (True, False, True):
            slot = queue.allocate()
            queue.fill(slot, value, 0)
        checkpoint = queue.checkpoint()
        assert queue.consume(10) == (READY, True)
        assert queue.consume(10) == (READY, False)
        queue.restore(checkpoint)
        # the same predictions come back in the same order
        assert queue.consume(10) == (READY, True)
        assert queue.consume(10) == (READY, False)
        assert queue.consume(10) == (READY, True)

    def test_restore_outside_window_rejected(self):
        queue = PredictionQueue(8)
        slot = queue.allocate()
        queue.fill(slot, True, 0)
        queue.consume(10)
        with pytest.raises(ValueError):
            queue.restore(queue.fetch_ptr + 1)

    def test_flush_unconsumed_drops_future_only(self):
        queue = PredictionQueue(8)
        for _ in range(3):
            slot = queue.allocate()
            queue.fill(slot, True, 0)
        queue.consume(10)
        dropped = queue.flush_unconsumed()
        assert dropped == 2
        assert queue.push_ptr == queue.fetch_ptr
        # the consumed slot is still live for retirement
        queue.retire_one()
        assert queue.retire_ptr == 1


class TestThrottle:
    def test_throttles_after_losses(self):
        queue = PredictionQueue(4)
        assert not queue.throttled
        queue.update_throttle(dce_correct=False, tage_correct=True)
        assert queue.throttled

    def test_recovers_after_wins(self):
        queue = PredictionQueue(4)
        queue.update_throttle(False, True)
        queue.update_throttle(False, True)
        queue.update_throttle(True, False)
        queue.update_throttle(True, False)
        assert not queue.throttled

    def test_both_correct_no_change(self):
        queue = PredictionQueue(4)
        queue.update_throttle(True, True)
        queue.update_throttle(False, False)
        assert queue.throttle == 0

    def test_saturation_bounds(self):
        queue = PredictionQueue(4)
        for _ in range(10):
            queue.update_throttle(False, True)
        assert queue.throttle == PredictionQueue.THROTTLE_MIN
        for _ in range(10):
            queue.update_throttle(True, False)
        assert queue.throttle == PredictionQueue.THROTTLE_MAX

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_throttle_always_in_range(self, updates):
        queue = PredictionQueue(4)
        for dce_correct, tage_correct in updates:
            queue.update_throttle(dce_correct, tage_correct)
            assert PredictionQueue.THROTTLE_MIN <= queue.throttle \
                <= PredictionQueue.THROTTLE_MAX


class TestQueueFile:
    def test_assignment_and_lookup(self):
        queues = PredictionQueueFile(num_queues=2, entries_per_queue=4)
        first = queues.get_or_assign(0x10)
        assert queues.get(0x10) is first

    def test_capacity_with_idle_reassignment(self):
        queues = PredictionQueueFile(num_queues=2, entries_per_queue=4)
        queues.get_or_assign(0x10)
        queues.get_or_assign(0x20)
        # both idle: a third branch steals the LRU queue
        assert queues.get_or_assign(0x30) is not None
        assert queues.get(0x10) is None

    def test_busy_queues_not_stolen(self):
        queues = PredictionQueueFile(num_queues=1, entries_per_queue=4)
        queue = queues.get_or_assign(0x10)
        queue.allocate()  # outstanding entry
        assert queues.get_or_assign(0x20) is None
        assert queues.get(0x10) is queue

    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_queue_budget(self, pcs):
        queues = PredictionQueueFile(num_queues=4, entries_per_queue=4)
        for pc in pcs:
            queues.get_or_assign(pc)
            assert len(queues.covered()) <= 4

    def test_queue_invariant_fetch_between_retire_and_push(self):
        queue = PredictionQueue(8)
        for _ in range(5):
            slot = queue.allocate()
            queue.fill(slot, True, 0)
        for _ in range(3):
            queue.consume(0)
        queue.retire_one()
        assert queue.retire_ptr <= queue.fetch_ptr <= queue.push_ptr
