"""Tests for the shared committed-trace cache.

The load-bearing invariant: a replayed region must be indistinguishable
from live emulation to *every* consumer — same records, same mid-stream
memory state (Branch Runahead reads ``machine.memory`` between records),
same final payloads.  These tests pin it by comparing full
``SimulationResult.to_dict()`` documents with only the host wall-clock
section stripped.
"""

import json

import pytest

from repro.core import config as br_config
from repro.emulator.machine import Machine
from repro.isa.program import ProgramBuilder
from repro.sim.simulator import simulate
from repro.sim.trace_cache import TraceCache
from repro.workloads import suite


def stripped(result):
    payload = json.loads(result.to_json())
    payload["stats"].pop("host", None)
    return payload


def store_loop_program():
    """A loop whose stores move memory every iteration."""
    b = ProgramBuilder(name="store-loop")
    base = b.data("arr", [0] * 8)
    i, v, ptr = b.regs("i", "v", "ptr")
    b.movi(ptr, base)
    b.movi(i, 0)
    b.movi(v, 1)
    b.label("top")
    b.muli(v, v, 3)
    b.st(v, ptr, index=i, scale=1, disp=0)
    b.addi(i, i, 1)
    b.andi(i, i, 7)
    b.jmp("top")
    return b.build()


class TestReplayBitIdentical:
    @pytest.mark.parametrize("kwargs", [
        dict(),
        dict(br_config_name="mini"),
        dict(start_instruction=500),
        dict(br_config_name="big", start_instruction=500),
    ])
    def test_fresh_recorded_replayed_all_equal(self, kwargs):
        kwargs = dict(kwargs)
        name = kwargs.pop("br_config_name", None)
        program = suite.load("sjeng_06")

        def run(trace_cache):
            return simulate(
                program, instructions=1_500, warmup=700,
                br_config=getattr(br_config, name)() if name else None,
                trace_cache=trace_cache, **kwargs)

        fresh = stripped(run(None))
        cache = TraceCache()
        recorded = stripped(run(cache))   # miss: records
        replayed = stripped(run(cache))   # hit: replays
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert recorded == fresh
        assert replayed == fresh

    def test_one_trace_serves_many_variants(self):
        """The committed stream is variant-independent: one entry, N hits."""
        program = suite.load("mcf_17")
        cache = TraceCache()
        results = []
        for config in (None, br_config.mini(), br_config.big()):
            results.append(stripped(simulate(
                program, instructions=1_000, warmup=500,
                br_config=config, trace_cache=cache)))
        assert len(cache) == 1
        assert cache.hits == 2
        baseline_no_cache = stripped(simulate(
            program, instructions=1_000, warmup=500))
        assert results[0] == baseline_no_cache


class TestReplayMemorySemantics:
    def test_replay_snapshots_pre_region_memory(self):
        """Replay starts from the region-entry image, not the final one."""
        program = store_loop_program()
        cache = TraceCache()
        live = Machine(program)
        wrapped = cache.record(live, 0, 50, live.stream(50))
        for _ in wrapped:
            pass
        replay = cache.replay(program, 0, 50)
        assert replay is not None
        # entry state: the array the live run mutated is back to zeros
        assert all(replay.memory.read(addr) == 0
                   for addr in program.initial_memory)

    def test_replay_memory_tracks_live_memory_per_record(self):
        """After k records, replayed memory == live memory after k records."""
        program = store_loop_program()
        cache = TraceCache()
        recorder = Machine(program)
        for _ in cache.record(recorder, 0, 40, recorder.stream(40)):
            pass
        live = Machine(program)
        live_stream = live.stream(40)
        replay = cache.replay(program, 0, 40)
        for live_record, replay_record in zip(live_stream, replay.stream(40)):
            assert replay_record is not live_record or True
            assert replay_record.seq == live_record.seq
            assert replay.memory._words == live.memory._words
            assert replay.pc == live.pc
            assert replay.seq == live.seq
        assert replay.regs == live.regs

    def test_replays_are_independent(self):
        """A half-consumed replay never leaks stores into the next one."""
        program = store_loop_program()
        cache = TraceCache()
        machine = Machine(program)
        for _ in cache.record(machine, 0, 40, machine.stream(40)):
            pass
        first = cache.replay(program, 0, 40)
        for _ in zip(range(20), first.stream(40)):
            pass
        second = cache.replay(program, 0, 40)
        assert all(second.memory.read(addr) == 0
                   for addr in program.initial_memory)


class TestCacheMechanics:
    def _record(self, cache, program, total):
        machine = Machine(program)
        for _ in cache.record(machine, 0, total, machine.stream(total)):
            pass

    def test_lru_bound_and_eviction(self):
        cache = TraceCache(capacity=2)
        program = store_loop_program()
        for total in (10, 20, 30):
            self._record(cache, program, total)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.replay(program, 0, 10) is None   # evicted (oldest)
        assert cache.replay(program, 0, 30) is not None

    def test_replay_refreshes_lru_order(self):
        cache = TraceCache(capacity=2)
        program = store_loop_program()
        self._record(cache, program, 10)
        self._record(cache, program, 20)
        assert cache.replay(program, 0, 10) is not None  # now most recent
        self._record(cache, program, 30)                 # evicts total=20
        assert cache.replay(program, 0, 20) is None
        assert cache.replay(program, 0, 10) is not None

    def test_abandoned_stream_stores_nothing(self):
        cache = TraceCache()
        program = store_loop_program()
        machine = Machine(program)
        wrapped = cache.record(machine, 0, 40, machine.stream(40))
        next(wrapped)
        wrapped.close()
        assert len(cache) == 0

    def test_stale_id_reuse_is_rejected(self):
        """An entry keyed under a foreign program's id never replays."""
        cache = TraceCache()
        program = store_loop_program()
        self._record(cache, program, 10)
        other = store_loop_program()
        key, entry = next(iter(cache._entries.items()))
        del cache._entries[key]
        cache._entries[(id(other), 0, 10)] = entry  # forced id collision
        assert cache.replay(other, 0, 10) is None

    def test_fast_forward_refused(self):
        cache = TraceCache()
        program = store_loop_program()
        self._record(cache, program, 10)
        replay = cache.replay(program, 0, 10)
        with pytest.raises(RuntimeError):
            replay.fast_forward(5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCache(capacity=0)

    def test_capacity_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "7")
        assert TraceCache().capacity == 7
