"""Layered RunConfig resolution: precedence, provenance, env semantics."""

import pickle

import pytest

import repro.config as repro_config
from repro.config import (
    ENV_VARS,
    RunConfig,
    current_config,
    env_int,
    env_str,
    resolve_config,
    resolve_jobs,
)
from repro.sim import experiments


class TestPrecedence:
    def test_defaults_when_nothing_set(self):
        resolved = resolve_config(environ={})
        assert resolved.config == RunConfig()
        assert set(resolved.provenance.values()) == {"default"}
        assert resolved.config_file is None

    def test_file_beats_default(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text('{"instructions": 3000}')
        resolved = resolve_config(config_file=str(path), environ={})
        assert resolved.config.instructions == 3000
        assert resolved.provenance["instructions"] == "file"
        assert resolved.provenance["warmup"] == "default"
        assert resolved.config_file == str(path)

    def test_env_beats_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text('{"instructions": 3000, "warmup": 100}')
        resolved = resolve_config(
            config_file=str(path),
            environ={"REPRO_INSTRUCTIONS": "4000"})
        assert resolved.config.instructions == 4000
        assert resolved.provenance["instructions"] == "env"
        # untouched file key still wins over the default
        assert resolved.config.warmup == 100
        assert resolved.provenance["warmup"] == "file"

    def test_flag_beats_env_and_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text('{"instructions": 3000}')
        resolved = resolve_config(
            flags={"instructions": 5000},
            config_file=str(path),
            environ={"REPRO_INSTRUCTIONS": "4000"})
        assert resolved.config.instructions == 5000
        assert resolved.provenance["instructions"] == "flag"

    def test_none_flags_are_not_given(self):
        resolved = resolve_config(flags={"instructions": None},
                                  environ={"REPRO_INSTRUCTIONS": "4000"})
        assert resolved.config.instructions == 4000
        assert resolved.provenance["instructions"] == "env"

    def test_config_file_env_var_names_the_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text('{"jobs": 3}')
        resolved = resolve_config(environ={"REPRO_CONFIG": str(path)})
        assert resolved.config.jobs == 3
        assert resolved.config_file == str(path)

    def test_empty_env_string_behaves_as_unset(self):
        resolved = resolve_config(environ={"REPRO_INSTRUCTIONS": ""})
        assert resolved.config.instructions == RunConfig.instructions
        assert resolved.provenance["instructions"] == "default"

    def test_every_field_has_an_env_var(self):
        assert set(ENV_VARS) == set(RunConfig.field_names())

    def test_unknown_flag_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            resolve_config(flags={"instrs": 1}, environ={})

    def test_bad_env_value_names_its_source(self):
        with pytest.raises(ValueError, match="REPRO_INSTRUCTIONS"):
            resolve_config(environ={"REPRO_INSTRUCTIONS": "lots"})


class TestConfigFiles:
    def test_toml_file(self, tmp_path):
        if repro_config.tomllib is None:
            pytest.skip("tomllib needs Python 3.11+")
        path = tmp_path / "cfg.toml"
        path.write_text('instructions = 2500\nvariant = "big"\n')
        resolved = resolve_config(config_file=str(path), environ={})
        assert resolved.config.instructions == 2500
        assert resolved.config.variant == "big"

    def test_toml_rejected_without_tomllib(self, tmp_path, monkeypatch):
        monkeypatch.setattr(repro_config, "tomllib", None)
        path = tmp_path / "cfg.toml"
        path.write_text("instructions = 2500\n")
        with pytest.raises(ValueError, match="3.11"):
            resolve_config(config_file=str(path), environ={})

    def test_unknown_key_is_an_error(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text('{"instrs": 1}')
        with pytest.raises(ValueError, match="instrs"):
            resolve_config(config_file=str(path), environ={})

    def test_non_object_file_is_an_error(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="table/object"):
            resolve_config(config_file=str(path), environ={})


class TestRunConfigObject:
    def test_frozen(self):
        with pytest.raises(Exception):
            RunConfig().instructions = 7

    def test_hashable_and_usable_as_key(self):
        table = {RunConfig(instructions=100): "a", RunConfig(): "b"}
        assert table[RunConfig(instructions=100)] == "a"
        assert table[RunConfig()] == "b"

    def test_pickle_round_trip(self):
        config = RunConfig(instructions=123, trace_cache_dir="/tmp/x")
        assert pickle.loads(pickle.dumps(config)) == config

    def test_validation(self):
        with pytest.raises(ValueError, match="instructions"):
            RunConfig(instructions=0).validate()
        with pytest.raises(ValueError, match="warmup"):
            RunConfig(warmup=-1).validate()
        with pytest.raises(ValueError, match="jobs"):
            RunConfig(jobs=0).validate()

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            RunConfig().replace(jobs=-2)
        assert RunConfig().replace(jobs=4).jobs == 4


class TestJobsResolver:
    def test_explicit_wins(self):
        assert resolve_jobs(3, environ={"REPRO_JOBS": "7"}) == 3

    def test_explicit_clamps_to_serial(self):
        assert resolve_jobs(0, environ={}) == 1
        assert resolve_jobs(-4, environ={}) == 1

    def test_env_layer(self):
        assert resolve_jobs(None, environ={"REPRO_JOBS": "7"}) == 7

    def test_default_is_serial(self):
        assert resolve_jobs(None, environ={}) == 1


class TestEnvReadAtResolutionTime:
    """Regression: REPRO_* must not be snapshotted at import time."""

    def test_instructions_env_set_after_import(self, monkeypatch):
        before = experiments.REGION_INSTRUCTIONS
        monkeypatch.setenv("REPRO_INSTRUCTIONS", str(before + 777))
        assert experiments.REGION_INSTRUCTIONS == before + 777
        assert current_config().instructions == before + 777

    def test_warmup_and_cache_size_follow_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "41")
        monkeypatch.setenv("REPRO_CACHE_SIZE", "5")
        assert experiments.REGION_WARMUP == 41
        assert experiments.RESULT_CACHE_SIZE == 5

    def test_default_session_adopts_env_changes(self, monkeypatch):
        from repro.session import default_session
        first = default_session()
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "2222")
        second = default_session()
        # same session object (caches survive), new config
        assert second is first
        assert second.config.instructions == 2222


class TestEnvHelpers:
    def test_env_int(self):
        assert env_int("X", 9, environ={}) == 9
        assert env_int("X", 9, environ={"X": ""}) == 9
        assert env_int("X", 9, environ={"X": "4"}) == 4

    def test_env_str(self):
        assert env_str("X", environ={}) is None
        assert env_str("X", "d", environ={"X": ""}) == "d"
        assert env_str("X", environ={"X": "/p"}) == "/p"
