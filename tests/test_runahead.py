"""Integration tests for the complete Branch Runahead system on the core."""

import numpy as np
import pytest

from repro.core.config import big, core_only, mini
from repro.isa.program import ProgramBuilder
from repro.sim.simulator import simulate
from repro.workloads.spec import leela_17


def data_dependent_loop(seed=3, size=4096):
    """Single hard branch on random array content, LCG walk (full period)."""
    rng = np.random.default_rng(seed)
    b = ProgramBuilder("dd-loop")
    data = b.data("data", [int(v) for v in rng.integers(0, 2, size)])
    datar, i, v, acc = b.regs("data", "i", "v", "acc")
    b.movi(datar, data)
    b.movi(i, 0)
    b.movi(acc, 0)
    b.label("loop")
    b.muli(i, i, 5)
    b.addi(i, i, 7)
    b.andi(i, i, size - 1)
    b.ld(v, base=datar, index=i)
    b.cmpi(v, 1)
    b.br("ne", "skip")
    b.addi(acc, acc, 1)
    b.label("skip")
    b.jmp("loop")
    return b.build()


@pytest.fixture(scope="module")
def dd_results():
    program = data_dependent_loop()
    baseline = simulate(program, instructions=12_000, warmup=8_000)
    runahead = simulate(program, instructions=12_000, warmup=8_000,
                        br_config=mini())
    return baseline, runahead


class TestEndToEnd:
    def test_mpki_reduced(self, dd_results):
        baseline, runahead = dd_results
        assert baseline.mpki > 20           # genuinely hard for TAGE
        assert runahead.mpki < baseline.mpki * 0.7

    def test_ipc_improves(self, dd_results):
        baseline, runahead = dd_results
        assert runahead.ipc > baseline.ipc

    def test_chain_installed_and_predictions_used(self, dd_results):
        _, runahead = dd_results
        assert len(runahead.runahead.chain_cache) >= 1
        assert runahead.core.dce_predictions_used > 0
        stats = runahead.runahead.stats
        assert stats.pred_correct > stats.pred_incorrect

    def test_functional_results_identical(self):
        """Branch Runahead must never change architectural results."""
        program = data_dependent_loop()
        baseline = simulate(program, instructions=6_000, warmup=0)
        runahead = simulate(program, instructions=6_000, warmup=0,
                            br_config=mini())
        assert baseline.core.taken_branches == runahead.core.taken_branches
        assert baseline.core.cond_branches == runahead.core.cond_branches

    def test_breakdown_sums_to_one(self, dd_results):
        _, runahead = dd_results
        breakdown = runahead.runahead.stats.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestConfigurations:
    @pytest.fixture(scope="class")
    def program(self):
        return leela_17.build()

    def test_leela_guard_chain_structure(self, program):
        """The Figure 4 result: B's chain must be guard-tagged by A."""
        result = simulate(program, instructions=16_000, warmup=8_000,
                          br_config=mini())
        chains = result.runahead.chain_cache.chains()
        guard_tags = [chain for chain in chains
                      if chain.has_affector_or_guard]
        assert guard_tags, "expected at least one guard-terminated chain"
        # the guarded chain triggers on a *specific* outcome of its guard
        assert any(chain.tag[1] in (0, 1) for chain in guard_tags)

    def test_big_at_least_as_good_as_core_only(self, program):
        results = {}
        for name, config in [("core_only", core_only()), ("big", big())]:
            results[name] = simulate(program, instructions=12_000,
                                     warmup=8_000, br_config=config)
        assert results["big"].mpki <= results["core_only"].mpki * 1.15

    def test_chain_length_limit_respected(self, program):
        result = simulate(program, instructions=12_000, warmup=6_000,
                          br_config=mini())
        for chain in result.runahead.chain_cache.chains():
            assert chain.length <= mini().max_chain_length

    def test_no_stores_in_installed_chains(self, program):
        """§4.2: dependence chains contain no store instructions."""
        result = simulate(program, instructions=12_000, warmup=6_000,
                          br_config=mini())
        for chain in result.runahead.chain_cache.chains():
            for op, timed in zip(chain.exec_uops, chain.timed_flags):
                if timed:
                    assert not op.is_store

    def test_merge_oracle_tracking(self, program):
        result = simulate(program, instructions=12_000, warmup=6_000,
                          br_config=mini(), track_merge_oracle=True)
        oracle = result.runahead.oracle
        assert oracle.resolved > 0
        assert oracle.dynamic_accuracy() > oracle.static_accuracy()

    def test_dce_uop_overhead_bounded(self, program):
        result = simulate(program, instructions=12_000, warmup=6_000,
                          br_config=mini())
        overhead = result.runahead.dce.stats.uops_executed \
            / result.core.instructions
        assert 0 < overhead < 6  # extra work exists but is bounded


class TestRobustness:
    def test_branchless_program_unaffected(self):
        b = ProgramBuilder("branchless")
        x = b.reg("x")
        b.movi(x, 0)
        b.label("top")
        for _ in range(64):
            b.addi(x, x, 1)
        b.jmp("top")
        program = b.build()
        result = simulate(program, instructions=6_000, warmup=2_000,
                          br_config=mini())
        assert result.mpki == 0
        assert result.runahead.stats.pred_total == 0

    def test_predictable_branches_leave_no_chains(self):
        b = ProgramBuilder("predictable")
        i, acc = b.regs("i", "acc")
        b.movi(acc, 0)
        b.label("outer")
        b.movi(i, 0)
        b.label("inner")
        b.addi(acc, acc, 1)
        b.addi(i, i, 1)
        b.cmpi(i, 100)
        b.br("lt", "inner")
        b.jmp("outer")
        program = b.build()
        result = simulate(program, instructions=12_000, warmup=8_000,
                          br_config=mini())
        # TAGE handles the loop; BR must not degrade it
        assert result.mpki < 2.0

    def test_store_heavy_program_stays_correct(self):
        """Chains read stale data after stores -> divergences, not crashes."""
        rng = np.random.default_rng(9)
        b = ProgramBuilder("store-heavy")
        data = b.data("data", [int(v) for v in rng.integers(0, 4, 1024)])
        datar, i, v = b.regs("data", "i", "v")
        b.movi(datar, data)
        b.movi(i, 0)
        b.label("loop")
        b.muli(i, i, 5)
        b.addi(i, i, 13)
        b.andi(i, i, 1023)
        b.ld(v, base=datar, index=i)
        b.cmpi(v, 2)
        b.br("ge", "flip")
        b.addi(v, v, 1)
        b.st(v, base=datar, index=i)   # mutate what chains read
        b.label("flip")
        b.jmp("loop")
        program = b.build()
        result = simulate(program, instructions=10_000, warmup=5_000,
                          br_config=mini())
        assert result.core.instructions == 10_000
