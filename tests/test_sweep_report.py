"""Drift-audited sweep reports built from flight-recorder journals."""

import json

from repro.config import RunConfig
from repro.observe.journal import read_journal
from repro.observe.sweep_report import (
    SWEEP_REPORT_SCHEMA,
    build_sweep_report,
    drift_policy,
    format_sweep_report,
    format_watch_line,
    github_annotations,
    journal_snapshot,
)
from repro.session import Session

CELLS = [("sjeng_06", "tage64"), ("sjeng_06", "mini"),
         ("mcf_06", "tage64"), ("mcf_06", "mini")]


def record_journal(tmp_path, cells=CELLS, jobs=2, name="sweep.jsonl"):
    path = tmp_path / name
    session = Session(RunConfig(instructions=800, warmup=400))
    rows = session.run_cells(cells, jobs=jobs, chunksize=2,
                             journal=str(path))
    return str(path), rows


def rewrite(path, mutate):
    """Apply ``mutate(event) -> event|None`` to every journal line."""
    events = []
    with open(path) as handle:
        for line in handle:
            event = mutate(json.loads(line))
            if event is not None:
                events.append(event)
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


class TestHealthySweepReport:
    def test_report_facts_match_the_journal(self, tmp_path):
        path, rows = record_journal(tmp_path)
        report = build_sweep_report(path)
        assert report["schema"] == SWEEP_REPORT_SCHEMA
        assert report["ok"]
        sweep = report["sweep"]
        assert sweep["total_cells"] == len(rows)
        assert sweep["cells_done"] == len(rows)
        assert sweep["cells_failed"] == 0
        assert sweep["complete"] and not sweep["truncated"]
        assert sweep["jobs"] == 2
        assert len(report["workers"]) == 2
        assert sum(info["cells"] for info in report["workers"]) == len(rows)
        assert report["drift"]["ok"]
        assert report["failures"] == []

    def test_accepts_a_pre_read_journal_dict(self, tmp_path):
        path, _rows = record_journal(tmp_path)
        journal = read_journal(path)
        assert build_sweep_report(journal)["ok"]

    def test_load_balance_and_slowest_cells(self, tmp_path):
        path, rows = record_journal(tmp_path)
        report = build_sweep_report(path, slowest=2)
        load = report["load"]
        assert load["workers"] == 2
        assert load["busiest_seconds"] >= load["idlest_seconds"]
        assert load["imbalance"] >= 1.0
        assert len(report["slowest_cells"]) == 2
        walls = [cell["wall_seconds"] for cell in report["slowest_cells"]]
        assert walls == sorted(walls, reverse=True)

    def test_text_rendering_mentions_ok(self, tmp_path):
        path, _rows = record_journal(tmp_path)
        text = format_sweep_report(build_sweep_report(path))
        assert "sweep report: 4/4 cells done" in text
        assert "ok: sweep complete, no failures, no worker drift" in text
        assert github_annotations(build_sweep_report(path)) == []


class TestDriftAudit:
    def test_policy_severities(self):
        policy = drift_policy()
        assert policy["manifest_fingerprint"].severity == "fail"
        assert policy["host.git_sha"].severity == "fail"
        assert policy["host.python"].severity == "fail"
        assert policy["host.platform"].severity == "warn"

    def test_drifted_worker_manifest_is_a_fail_violation(self, tmp_path):
        path, _rows = record_journal(tmp_path)

        def drift_first_worker(event):
            if event["event"] == "worker_started" \
                    and not drift_first_worker.done:
                drift_first_worker.done = True
                event["manifest_fingerprint"] = "0" * 64
                event["manifest"]["host"]["git_sha"] = "deadbeef"
            return event
        drift_first_worker.done = False
        rewrite(path, drift_first_worker)

        report = build_sweep_report(path)
        assert not report["ok"]
        assert not report["drift"]["ok"]
        metrics = {v["metric"] for v in report["drift"]["violations"]}
        assert metrics == {"manifest_fingerprint", "host.git_sha"}
        assert all(v["severity"] == "fail"
                   for v in report["drift"]["violations"])
        text = format_sweep_report(report)
        assert "DRIFT" in text and "drift violation(s)" in text
        assert any("::error title=Worker drift::" in line
                   for line in github_annotations(report))

    def test_platform_mismatch_only_warns(self, tmp_path):
        path, _rows = record_journal(tmp_path)

        def vary_platform(event):
            if event["event"] == "worker_started":
                event["manifest"]["host"]["platform"] = "elsewhere-os"
            return event
        rewrite(path, vary_platform)

        report = build_sweep_report(path)
        assert report["ok"]  # warnings never fail the report
        assert report["drift"]["ok"]
        assert {w["metric"] for w in report["drift"]["warnings"]} == \
            {"host.platform"}
        assert any("::warning title=Worker drift::" in line
                   for line in github_annotations(report))

    def test_worker_without_a_manifest_is_unauditable(self, tmp_path):
        path, _rows = record_journal(tmp_path)

        def strip_manifest(event):
            if event["event"] == "worker_started":
                event["manifest"] = None
                event["manifest_fingerprint"] = None
            return event
        rewrite(path, strip_manifest)

        report = build_sweep_report(path)
        assert not report["ok"]
        assert all(v["metric"] == "manifest" and v["severity"] == "fail"
                   for v in report["drift"]["violations"])
        assert "NO MANIFEST" in format_sweep_report(report)


class TestFailuresAndTruncation:
    def test_failed_cells_are_digested_by_exception_type(self, tmp_path):
        cells = [("sjeng_06", "tage64"), ("no_such_bench", "tage64"),
                 ("also_missing", "tage64")]
        path, rows = record_journal(tmp_path, cells=cells, jobs=1)
        assert [row["ok"] for row in rows] == [True, False, False]
        report = build_sweep_report(path)
        assert not report["ok"]
        assert report["sweep"]["cells_failed"] == 2
        [group] = report["failures"]
        assert group["type"] == "UnknownComponentError"
        assert group["count"] == 2
        assert group["cells"] == ["no_such_bench/tage64",
                                  "also_missing/tage64"]
        assert any("::error title=Failed sweep cells::" in line
                   for line in github_annotations(report))

    def test_incomplete_journal_fails_the_report(self, tmp_path):
        path, _rows = record_journal(tmp_path)
        lines = open(path).read().splitlines(keepends=True)
        open(path, "w").write("".join(lines[:-1]))  # drop sweep_finished
        report = build_sweep_report(path)
        assert not report["ok"]
        assert not report["sweep"]["complete"]
        assert report["sweep"]["wall_seconds"] is None
        assert "INCOMPLETE" in format_sweep_report(report)
        assert any("::error title=Incomplete sweep::" in line
                   for line in github_annotations(report))


class TestProfileSurfacing:
    def test_pstats_dumps_become_top_frames(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "cprofile")
        path, rows = record_journal(tmp_path, cells=CELLS[:2], jobs=1)
        report = build_sweep_report(path)
        profile = report["profile"]
        assert profile["dumps"] == 2
        assert profile["top_cumulative"]
        frame = profile["top_cumulative"][0]
        assert frame["cumulative_seconds"] > 0
        assert "(" in frame["function"]
        assert "profile :" in format_sweep_report(report)

    def test_no_profile_section_without_the_env(self, tmp_path):
        path, _rows = record_journal(tmp_path)
        assert build_sweep_report(path)["profile"] is None


class TestWatch:
    def test_snapshot_of_a_finished_journal(self, tmp_path):
        path, rows = record_journal(tmp_path)
        snapshot = journal_snapshot(path)
        assert snapshot["done"] == len(rows)
        assert snapshot["failed"] == 0
        assert snapshot["complete"]
        assert snapshot["next_cell"] is None
        assert format_watch_line(snapshot).endswith("| finished")

    def test_snapshot_of_a_growing_journal(self, tmp_path):
        path, _rows = record_journal(tmp_path, jobs=1)
        events = [json.loads(line) for line in open(path)]
        landed = [e for e in events
                  if e["event"] in ("cell_started", "cell_finished")]
        # keep sweep_started + the first cell only: a sweep in flight
        with open(path, "w") as handle:
            for event in [events[0]] + landed[:2]:
                handle.write(json.dumps(event) + "\n")
        snapshot = journal_snapshot(path)
        assert snapshot["done"] == 1
        assert not snapshot["complete"]
        assert snapshot["next_cell"] == "/".join(CELLS[1])
        line = format_watch_line(snapshot)
        assert "sweep 1/4 cells" in line and not line.endswith("finished")
