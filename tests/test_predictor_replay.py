"""Drift tests for the MPKI-only replay fast path.

The contract pinned here is the one DESIGN.md §6a states: for any
predictor-only cell, :func:`repro.sim.predictor_replay.replay_mpki` must
produce branch statistics **bit-identical** to a full-timing
:func:`repro.sim.simulator.simulate` run of the same cell — same MPKI,
same per-PC mispredict breakdown, same warmup semantics, including the
short-stream ``warmup_truncated`` edge.  Any divergence is a bug in the
fast path, never an acceptable approximation.
"""

import pytest

from repro.isa.program import ProgramBuilder
from repro.predictors.mtage import mtage_sc
from repro.predictors.tage_scl import tage_scl_64kb, tage_scl_80kb
from repro.sim import experiments
from repro.sim.predictor_replay import (PredictorReplayResult, branch_events,
                                        replay_mpki)
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.sim.trace_cache import TraceCache
from repro.telemetry import StatRegistry
from repro.workloads import suite

PREDICTORS = {
    "tage64": tage_scl_64kb,
    "tage80": tage_scl_80kb,
    "mtage": mtage_sc,
}


def halting_countdown(iterations=40):
    """A short program that actually HALTs (suite workloads run forever)."""
    b = ProgramBuilder(name="countdown")
    i, = b.regs("i")
    b.movi(i, iterations)
    b.label("top")
    b.addi(i, i, -1)
    b.cmpi(i, 0)
    b.br("ne", "top")
    b.halt()
    return b.build()


def branch_fields(core):
    """Every branch-outcome statistic both paths are required to agree on."""
    return {
        "instructions": core.instructions,
        "cond_branches": core.cond_branches,
        "taken_branches": core.taken_branches,
        "mispredicts": core.mispredicts,
        "baseline_mispredicts": core.baseline_mispredicts,
        "warmup_truncated": core.warmup_truncated,
        "mpki": core.mpki,
        "branch_counts": dict(core.branch_counts),
        "branch_mispredicts": dict(core.branch_mispredicts),
    }


def assert_no_drift(benchmark, factory, instructions, warmup):
    program = suite.load(benchmark)
    full = simulate(program, instructions=instructions, warmup=warmup,
                    predictor=factory(), trace_cache=TraceCache())
    fast = replay_mpki(program, factory(), instructions=instructions,
                       warmup=warmup, trace_cache=TraceCache())
    assert branch_fields(fast.core) == branch_fields(full.core)
    return full, fast


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_predictor_sweep_matches_full_timing(self, name):
        assert_no_drift("sjeng_06", PREDICTORS[name],
                        instructions=1_500, warmup=700)

    @pytest.mark.parametrize("workload", ["mcf_17", "leela_17", "bfs"])
    def test_across_benchmarks(self, workload):
        assert_no_drift(workload, tage_scl_64kb,
                        instructions=1_200, warmup=600)

    def test_zero_warmup(self):
        full, fast = assert_no_drift("sjeng_06", tage_scl_64kb,
                                     instructions=1_000, warmup=0)
        assert not fast.core.warmup_truncated

    def test_truncated_warmup(self):
        # the program HALTs before the stream crosses the warmup boundary:
        # both paths must report the whole run with the flag set
        program = halting_countdown()
        full = simulate(program, instructions=100, warmup=5_000,
                        predictor=tage_scl_64kb(), trace_cache=TraceCache())
        fast = replay_mpki(program, tage_scl_64kb(), instructions=100,
                           warmup=5_000, trace_cache=TraceCache())
        assert branch_fields(fast.core) == branch_fields(full.core)
        assert fast.core.warmup_truncated
        assert fast.core.instructions > 0

    def test_without_trace_cache(self):
        program = suite.load("sjeng_06")
        cached = replay_mpki(program, tage_scl_64kb(), instructions=1_000,
                             warmup=500, trace_cache=TraceCache())
        direct = replay_mpki(program, tage_scl_64kb(), instructions=1_000,
                             warmup=500, trace_cache=None)
        assert branch_fields(direct.core) == branch_fields(cached.core)


class TestBranchEvents:
    def test_cache_and_direct_paths_agree(self):
        program = suite.load("mcf_17")
        direct = branch_events(program, 0, 1_000, trace_cache=None)
        cached = branch_events(program, 0, 1_000, trace_cache=TraceCache())
        assert direct == cached

    def test_events_memoized_on_entry(self):
        program = suite.load("mcf_17")
        cache = TraceCache()
        events, _ = branch_events(program, 0, 1_000, trace_cache=cache)
        entry = cache.lookup(program, 0, 1_000, count=False)
        assert entry.branch_events is events
        again, _ = branch_events(program, 0, 1_000, trace_cache=cache)
        assert again is events  # second sweep pays no re-extraction


class TestReplayResult:
    def run_one(self):
        return replay_mpki(suite.load("sjeng_06"), tage_scl_64kb(),
                           instructions=1_000, warmup=500,
                           trace_cache=TraceCache())

    def test_payload_shape(self):
        payload = self.run_one().to_dict()
        assert payload["mpki_only"] is True
        assert payload["branch_runahead"] is False
        assert payload["ipc"] is None  # no timing model ran
        assert payload["mpki"] == pytest.approx(payload["mpki"])
        stats = payload["stats"]
        assert "memsys" not in stats  # no fabricated timing namespaces
        assert "cycles" not in stats.get("core", {})
        assert stats["core"]["fetch"]["cond_branches"] > 0
        assert "trace_cache" in stats["host"]

    def test_summary_mentions_mode(self):
        assert "mpki-only" in self.run_one().summary()

    def test_registry_cached(self):
        result = self.run_one()
        assert result.build_registry() is result.build_registry()


class TestExperimentsDispatch:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        experiments.clear_caches()
        yield
        experiments.clear_caches()

    REGION = dict(instructions=1_200, warmup=600)

    def test_predictor_only_variant_takes_fast_path(self):
        result = experiments.run("sjeng_06", "tage64", outputs="mpki",
                                 **self.REGION)
        assert isinstance(result, PredictorReplayResult)

    def test_spec_none_variant_takes_fast_path(self):
        token = experiments.spec_variant("tage80")
        result = experiments.run("sjeng_06", token, outputs="mpki",
                                 **self.REGION)
        assert isinstance(result, PredictorReplayResult)

    def test_br_variant_falls_back_to_full_timing(self):
        result = experiments.run("sjeng_06", "mini", outputs="mpki",
                                 **self.REGION)
        assert isinstance(result, SimulationResult)

    def test_fast_path_mpki_matches_full_run(self):
        fast = experiments.run("sjeng_06", "tage64", outputs="mpki",
                               **self.REGION)
        experiments.clear_caches()
        full = experiments.run("sjeng_06", "tage64", outputs="full",
                               **self.REGION)
        assert branch_fields(fast.core) == branch_fields(full.core)

    def test_modes_cached_under_distinct_keys(self):
        fast = experiments.run("sjeng_06", "tage64", outputs="mpki",
                               **self.REGION)
        full = experiments.run("sjeng_06", "tage64", outputs="full",
                               **self.REGION)
        assert isinstance(fast, PredictorReplayResult)
        assert isinstance(full, SimulationResult)
        # and the cache hands each mode back its own object
        assert experiments.run("sjeng_06", "tage64", outputs="mpki",
                               **self.REGION) is fast
        assert experiments.run("sjeng_06", "tage64", outputs="full",
                               **self.REGION) is full

    def test_run_cells_threads_outputs(self):
        cells = [("sjeng_06", "tage64"), ("sjeng_06", "tage80")]
        rows = experiments.run_cells(cells, jobs=1, outputs="mpki",
                                     **self.REGION)
        assert all(row["payload"]["mpki_only"] for row in rows)
        assert all(row["payload"]["ipc"] is None for row in rows)

    def test_run_matrix_merged_registry(self):
        matrix, registry = experiments.run_matrix(
            variants=["tage64", "tage80"], benchmarks=["sjeng_06"],
            jobs=1, outputs="mpki", merged=True, **self.REGION)
        assert matrix["sjeng_06"]["tage64"]["mpki_only"] is True
        per_cell = [
            experiments.run("sjeng_06", variant, outputs="mpki",
                            **self.REGION).core.cond_branches
            for variant in ("tage64", "tage80")]
        merged = registry.get("core.fetch.cond_branches")
        assert merged.value == sum(per_cell)  # counters add across cells

    def test_unknown_outputs_rejected(self):
        with pytest.raises(ValueError):
            experiments.run("sjeng_06", "tage64", outputs="cycles")


class TestRegistryState:
    def test_round_trip(self):
        registry = StatRegistry()
        registry.counter("a.events").add(7)
        registry.gauge("a.ratio").set(0.25)
        registry.histogram("a.dist").record_many([1, 2, 2, 9])
        rebuilt = StatRegistry.from_state(registry.to_state())
        assert rebuilt.to_flat_dict() == registry.to_flat_dict()
        assert rebuilt.get("a.dist").values == [1, 2, 2, 9]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StatRegistry.from_state({"x": ["sketch", 1]})

    def test_state_survives_merge(self):
        left = StatRegistry()
        left.counter("n").add(3)
        right = StatRegistry()
        right.counter("n").add(4)
        merged = StatRegistry.from_state(left.to_state()).merge(
            StatRegistry.from_state(right.to_state()))
        assert merged.get("n").value == 7
