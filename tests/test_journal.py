"""Sweep flight recorder: journals, live progress, failure tolerance."""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.config import RunConfig
from repro.observe.journal import (
    JOURNAL_SCHEMA,
    SweepRecorder,
    format_progress,
    profile_dir_for,
    read_journal,
)
from repro.session import Session, _worker_sessions
from repro.sim.bench import payload_digest

CELLS = [("sjeng_06", "tage64"), ("sjeng_06", "mini"),
         ("mcf_06", "tage64"), ("mcf_06", "mini")]


def quick_session() -> Session:
    return Session(RunConfig(instructions=800, warmup=400))


def events_of(path) -> list:
    return read_journal(str(path))["events"]


def kinds_of(path) -> list:
    return [event["event"] for event in events_of(path)]


class TestJournalRoundtrip:
    def test_serial_sweep_produces_a_complete_journal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        rows = quick_session().run_cells(CELLS, jobs=1, journal=str(path))
        journal = read_journal(str(path))
        assert journal["schema"] == JOURNAL_SCHEMA
        assert journal["complete"] and not journal["truncated"]
        assert journal["malformed_lines"] == 0
        kinds = [event["event"] for event in journal["events"]]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("cell_finished") == len(rows)
        assert kinds.count("worker_started") == 1  # serial: one process

    def test_sweep_started_carries_manifest_and_plan(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        quick_session().run_cells(CELLS, jobs=1, journal=str(path))
        started = events_of(path)[0]
        assert started["schema"] == JOURNAL_SCHEMA
        assert started["manifest"]["config"]["instructions"] == 800
        assert started["manifest_fingerprint"]
        assert started["cells"] == [list(cell) for cell in CELLS]
        assert started["total_cells"] == len(CELLS)
        assert started["sweep_id"]

    def test_cell_digests_match_the_returned_rows(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        rows = quick_session().run_cells(CELLS, jobs=1, journal=str(path))
        finished = [event for event in events_of(path)
                    if event["event"] == "cell_finished"]
        assert [event["payload_sha256"] for event in finished] == \
            [payload_digest(row["payload"]) for row in rows]
        assert [event["mpki"] for event in finished] == \
            [row["payload"]["mpki"] for row in rows]

    def test_parallel_journal_is_deterministically_merged(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        quick_session().run_cells(CELLS, jobs=1, chunksize=2,
                                  journal=str(serial_path))
        quick_session().run_cells(CELLS, jobs=2, chunksize=2,
                                  journal=str(parallel_path))

        def cell_facts(path):
            return [(e["index"], e["benchmark"], e["variant"],
                     e["payload_sha256"])
                    for e in events_of(path)
                    if e["event"] == "cell_finished"]

        # same cells, same order, same digests for any job count
        assert cell_facts(serial_path) == cell_facts(parallel_path)
        parallel = read_journal(str(parallel_path))
        assert parallel["complete"]
        pids = {event["pid"] for event in parallel["events"]
                if event["event"] == "worker_started"}
        assert len(pids) == 2

    def test_worker_streams_have_contiguous_seq(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        quick_session().run_cells(CELLS, jobs=2, chunksize=2,
                                  journal=str(path))
        streams = {}
        for event in events_of(path):
            streams.setdefault(event["stream"], []).append(event["seq"])
        for stream, seqs in streams.items():
            assert seqs == list(range(len(seqs))), stream

    def test_worker_manifests_recorded_per_worker(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        quick_session().run_cells(CELLS, jobs=2, chunksize=2,
                                  journal=str(path))
        started = [event for event in events_of(path)
                   if event["event"] == "worker_started"]
        assert len(started) == 2
        for event in started:
            assert event["manifest"]["config"]["instructions"] == 800
            assert event["manifest_fingerprint"]

    @pytest.mark.parametrize("how", ["argument", "environment"])
    def test_spawn_context_journal(self, tmp_path, monkeypatch, how):
        path = tmp_path / "sweep.jsonl"
        cells = CELLS[:2]
        kwargs = {}
        if how == "argument":
            kwargs["start_method"] = "spawn"
        else:
            monkeypatch.setenv("REPRO_MP_START", "spawn")
        rows = quick_session().run_cells(cells, jobs=2, journal=str(path),
                                         **kwargs)
        assert all(row["ok"] for row in rows)
        journal = read_journal(str(path))
        assert journal["complete"]
        assert journal["events"][0]["start_method"] == "spawn"
        finished = [event for event in journal["events"]
                    if event["event"] == "cell_finished"]
        assert [event["payload_sha256"] for event in finished] == \
            [payload_digest(row["payload"]) for row in rows]


class TestFailureTolerance:
    def test_raising_cell_does_not_abort_the_sweep(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cells = [("sjeng_06", "tage64"), ("no_such_bench", "tage64"),
                 ("mcf_06", "tage64")]
        rows = quick_session().run_cells(cells, jobs=1, journal=str(path))
        assert [row["ok"] for row in rows] == [True, False, True]
        error = rows[1]["error"]
        assert error["type"] == "UnknownComponentError"
        assert "no_such_bench" in error["message"]
        assert "Traceback" in error["traceback"]
        assert rows[1]["payload"] is None
        kinds = kinds_of(path)
        assert kinds.count("cell_failed") == 1
        assert kinds.count("cell_finished") == 2
        assert kinds[-1] == "sweep_finished"
        finished = events_of(path)[-1]
        assert finished["cells_failed"] == 1 and not finished["ok"]

    def test_raising_cell_in_a_worker_process(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cells = [("sjeng_06", "tage64"), ("sjeng_06", "no_such_variant")]
        rows = quick_session().run_cells(cells, jobs=2, journal=str(path))
        assert [row["ok"] for row in rows] == [True, False]
        failed = [event for event in events_of(path)
                  if event["event"] == "cell_failed"]
        assert failed[0]["error"]["type"] == "UnknownComponentError"

    def test_failures_are_non_fatal_without_a_journal(self):
        rows = quick_session().run_cells(
            [("sjeng_06", "tage64"), ("no_such_bench", "tage64")], jobs=1)
        assert [row["ok"] for row in rows] == [True, False]

    def test_run_matrix_degrades_failed_cells_to_error_entries(self):
        session = quick_session()
        matrix, registry = session.run_matrix(
            variants=["tage64", "no_such_variant"],
            benchmarks=["sjeng_06"], jobs=1, merged=True)
        assert "mpki" in matrix["sjeng_06"]["tage64"]
        assert "error" in matrix["sjeng_06"]["no_such_variant"]
        # the merged registry folded only the successful cell
        assert registry.get("core.instructions").value == 800


class TestTruncationTolerance:
    def test_truncated_journal_reads_as_incomplete(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        quick_session().run_cells(CELLS, jobs=1, journal=str(path))
        lines = path.read_text().splitlines(keepends=True)
        # drop sweep_finished and tear the final line mid-JSON, as a
        # SIGKILLed writer would
        torn = "".join(lines[:-2]) + lines[-2][:20]
        path.write_text(torn)
        journal = read_journal(str(path))
        assert not journal["complete"]
        assert journal["truncated"]
        assert journal["malformed_lines"] == 1
        assert journal["events"][0]["event"] == "sweep_started"

    def test_killed_sweep_leaves_a_parseable_journal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        script = textwrap.dedent(f"""
            import os, sys
            from repro.config import RunConfig
            from repro.session import Session
            session = Session(RunConfig(instructions=800, warmup=400))
            cells = [("sjeng_06", "tage64")] * 50
            def stall(snapshot):
                print("ROW", flush=True)
            session.run_cells(cells, jobs=1, cache=False,
                              journal={str(path)!r}, progress=stall)
        """)
        import repro
        src = os.path.dirname(os.path.dirname(repro.__file__))
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True,
            env={**os.environ, "PYTHONPATH": src})
        try:
            # wait until at least one row landed, then kill -9
            assert process.stdout.readline().strip() == "ROW"
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        journal = read_journal(str(path))
        assert not journal["complete"]
        assert journal["truncated"]
        assert journal["events"][0]["event"] == "sweep_started"
        assert "cell_finished" in [e["event"] for e in journal["events"]]

    def test_non_journal_file_is_rejected(self, tmp_path):
        path = tmp_path / "nope.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError, match="not a repro-journal-v1"):
            read_journal(str(path))
        path.write_text("")
        with pytest.raises(ValueError):
            read_journal(str(path))


class TestProgress:
    def test_progress_callback_sees_every_row(self):
        snapshots = []
        rows = quick_session().run_cells(CELLS, jobs=1,
                                         progress=snapshots.append)
        assert len(snapshots) == len(rows)
        assert snapshots[-1]["done"] == len(CELLS)
        assert snapshots[-1]["failed"] == 0
        assert snapshots[0]["next_cell"] == "/".join(CELLS[1])
        assert snapshots[-1]["next_cell"] is None
        assert snapshots[-1]["last_cell"] == "/".join(CELLS[-1])
        # ETA only exists while cells remain
        assert snapshots[0]["eta_seconds"] is not None

    def test_progress_only_run_writes_no_file(self, tmp_path):
        quick_session().run_cells(CELLS[:1], jobs=1,
                                  progress=lambda snapshot: None)
        assert list(tmp_path.iterdir()) == []

    def test_format_progress_line(self):
        line = format_progress({
            "done": 3, "failed": 1, "total": 8,
            "elapsed_seconds": 2.0, "eta_seconds": 2.0,
            "trace_cache_hit_rate": 0.5,
            "last_cell": "sjeng_06/mini", "next_cell": "mcf_06/tage64"})
        assert "sweep 4/8 cells (1 FAILED)" in line
        assert "trace-hit 50%" in line
        assert "ETA 2.0s" in line
        assert "waiting on mcf_06/tage64" in line

    def test_format_progress_finished_shows_last_cell(self):
        line = format_progress({
            "done": 2, "failed": 0, "total": 2,
            "elapsed_seconds": 1.0, "eta_seconds": None,
            "trace_cache_hit_rate": 1.0,
            "last_cell": "mcf_06/mini", "next_cell": None})
        assert "last mcf_06/mini" in line
        assert "waiting" not in line


class TestProfiling:
    def test_cprofile_dumps_one_pstats_per_cell(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "cprofile")
        path = tmp_path / "sweep.jsonl"
        quick_session().run_cells(CELLS[:2], jobs=1, journal=str(path))
        dumps = sorted(os.listdir(profile_dir_for(str(path))))
        assert dumps == ["cell-0000.pstats", "cell-0001.pstats"]
        assert events_of(path)[0]["profile"] == "cprofile"

    def test_profile_requires_a_journal(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "cprofile")
        recorder = SweepRecorder(None, cells=CELLS, profile="cprofile")
        assert recorder.profile is None and recorder.profile_dir is None


class TestWorkerSessionHousekeeping:
    def test_parallel_sweeps_do_not_leak_published_sessions(self):
        session = quick_session()
        baseline = len(_worker_sessions)
        for _ in range(3):
            session.run_cells(CELLS[:2], jobs=2)
        assert len(_worker_sessions) == baseline

    def test_publication_is_cleaned_up_even_on_failure(self):
        session = quick_session()
        baseline = len(_worker_sessions)
        rows = session.run_cells([("no_such_bench", "tage64")] * 2, jobs=2)
        assert not any(row["ok"] for row in rows)
        assert len(_worker_sessions) == baseline
