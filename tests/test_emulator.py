"""Unit and property tests for the functional emulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.machine import Machine
from repro.emulator.memory import MASK64, Memory, OverlayMemory, wrap64
from repro.emulator.shadow import wrong_path_walk
from repro.isa.program import ProgramBuilder
from repro.isa.registers import CC

INT64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def run_program(build, max_instructions=10_000):
    """Build a program with ``build(b)`` and run it to completion."""
    b = ProgramBuilder()
    build(b)
    machine = Machine(b.build())
    records = machine.run(max_instructions)
    return machine, records


class TestWrap64:
    @given(INT64)
    def test_identity_in_range(self, value):
        assert wrap64(value) == value

    @given(st.integers())
    def test_always_in_range(self, value):
        wrapped = wrap64(value)
        assert -(1 << 63) <= wrapped < (1 << 63)

    @given(st.integers(), st.integers())
    def test_additive_homomorphism(self, a, b):
        assert wrap64(wrap64(a) + wrap64(b)) == wrap64(a + b)


class TestMemory:
    def test_default_zero(self):
        assert Memory().read(12345) == 0

    def test_write_read(self):
        m = Memory()
        m.write(10, -7)
        assert m.read(10) == -7

    def test_initial_image(self):
        m = Memory({5: 42})
        assert m.read(5) == 42

    def test_copy_is_independent(self):
        m = Memory({1: 1})
        c = m.copy()
        c.write(1, 2)
        assert m.read(1) == 1

    def test_overlay_reads_through(self):
        backing = Memory({3: 30})
        overlay = OverlayMemory(backing)
        assert overlay.read(3) == 30

    def test_overlay_store_is_private(self):
        backing = Memory({3: 30})
        overlay = OverlayMemory(backing)
        overlay.write(3, 99)
        assert overlay.read(3) == 99
        assert backing.read(3) == 30


class TestArithmetic:
    def test_add_sub_mul(self):
        def build(b):
            a, c, d = b.regs("a", "c", "d")
            b.movi(a, 6)
            b.movi(c, 7)
            b.mul(d, a, c)
            b.sub(d, d, a)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[3 - 1] == 36  # d == R2

    def test_wraparound(self):
        def build(b):
            a = b.reg("a")
            b.movi(a, (1 << 63) - 1)
            b.addi(a, a, 1)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[0] == -(1 << 63)

    def test_logical_ops(self):
        def build(b):
            a, c = b.regs("a", "c")
            b.movi(a, 0b1100)
            b.movi(c, 0b1010)
            b.and_(b.reg("x"), a, c)
            b.or_(b.reg("y"), a, c)
            b.xor(b.reg("z"), a, c)
            b.not_(b.reg("n"), a)
            b.halt()
        machine, _ = run_program(build)
        regs = {name: machine.regs[i] for name, i in
                [("x", 2), ("y", 3), ("z", 4), ("n", 5)]}
        assert regs["x"] == 0b1000
        assert regs["y"] == 0b1110
        assert regs["z"] == 0b0110
        assert regs["n"] == wrap64(~0b1100)

    def test_shifts(self):
        def build(b):
            a = b.reg("a")
            b.movi(a, -8)
            b.sari(b.reg("sar"), a, 1)
            b.shri(b.reg("shr"), a, 1)
            b.shli(b.reg("shl"), a, 1)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[1] == -4
        assert machine.regs[2] == wrap64((-8 & MASK64) >> 1)
        assert machine.regs[3] == -16

    def test_sext32(self):
        def build(b):
            a = b.reg("a")
            b.movi(a, 0xFFFFFFFF)
            b.sext32(b.reg("s"), a)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[1] == -1

    @pytest.mark.parametrize("a,b_val,quotient,remainder", [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (5, 0, 0, 0),  # defined: div-by-zero yields 0
    ])
    def test_div_mod_truncation(self, a, b_val, quotient, remainder):
        def build(b):
            ra, rb = b.regs("a", "b")
            b.movi(ra, a)
            b.movi(rb, b_val)
            b.div(b.reg("q"), ra, rb)
            b.mod(b.reg("r"), ra, rb)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[2] == quotient
        if b_val != 0:
            assert machine.regs[3] == remainder

    @given(INT64, INT64)
    @settings(max_examples=50, deadline=None)
    def test_div_mod_invariant(self, a, b_val):
        """a == q*b + r whenever b != 0 (C-style truncation)."""
        if b_val == 0:
            return
        def build(b):
            ra, rb = b.regs("a", "b")
            b.movi(ra, a)
            b.movi(rb, b_val)
            b.div(b.reg("q"), ra, rb)
            b.mod(b.reg("r"), ra, rb)
            b.halt()
        machine, _ = run_program(build)
        q, r = machine.regs[2], machine.regs[3]
        assert wrap64(q * b_val + r) == a


class TestControlFlow:
    def test_loop_counts(self):
        def build(b):
            i, total = b.regs("i", "total")
            b.movi(i, 0)
            b.movi(total, 0)
            b.label("loop")
            b.add(total, total, i)
            b.addi(i, i, 1)
            b.cmpi(i, 5)
            b.br("lt", "loop")
            b.halt()
        machine, records = run_program(build)
        assert machine.regs[1] == 0 + 1 + 2 + 3 + 4
        branches = [r for r in records if r.uop.is_cond_branch]
        assert [r.taken for r in branches] == [True] * 4 + [False]

    def test_jmp(self):
        def build(b):
            x = b.reg("x")
            b.movi(x, 1)
            b.jmp("end")
            b.movi(x, 99)  # skipped
            b.label("end")
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[0] == 1

    def test_cc_semantics(self):
        def build(b):
            a = b.reg("a")
            b.movi(a, 3)
            b.cmpi(a, 5)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[CC] == -1

    def test_halt_stops_stream(self):
        def build(b):
            b.halt()
        machine, records = run_program(build)
        assert records == []
        assert machine.halted

    def test_instruction_budget(self):
        def build(b):
            b.label("spin")
            b.jmp("spin")
        machine, records = run_program(build, max_instructions=17)
        assert len(records) == 17
        assert not machine.halted


class TestMemoryOps:
    def test_load_store_roundtrip(self):
        def build(b):
            base = b.zeros("buf", 4)
            addr, val, out = b.regs("addr", "val", "out")
            b.movi(addr, base)
            b.movi(val, 1234)
            b.st(val, base=addr, disp=2)
            b.ld(out, base=addr, disp=2)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[2] == 1234

    def test_indexed_addressing(self):
        def build(b):
            base = b.data("arr", [10, 20, 30, 40])
            baser, i, out = b.regs("base", "i", "out")
            b.movi(baser, base)
            b.movi(i, 3)
            b.ld(out, base=baser, index=i)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[2] == 40

    def test_scaled_addressing(self):
        def build(b):
            base = b.data("arr", [0, 0, 7, 0, 9])
            baser, i, out = b.regs("base", "i", "out")
            b.movi(baser, base)
            b.movi(i, 2)
            b.ld(out, base=baser, index=i, scale=2)
            b.halt()
        machine, _ = run_program(build)
        assert machine.regs[2] == 9

    def test_dynamic_record_fields(self):
        def build(b):
            base = b.data("arr", [55])
            baser, out = b.regs("base", "out")
            b.movi(baser, base)
            b.ld(out, base=baser)
            b.halt()
        _, records = run_program(build)
        load = records[-1]
        assert load.uop.is_load
        assert load.value == 55
        assert load.addr == load.uop.base and load.addr >= 0 or True
        assert load.dst_value == 55


class TestShadowExecution:
    def _branchy_program(self):
        b = ProgramBuilder()
        x, y = b.regs("x", "y")
        b.movi(x, 0)          # 0
        b.movi(y, 0)          # 1
        b.label("loop")
        b.cmpi(x, 5)          # 2
        b.br("ge", "bigger")  # 3
        b.addi(y, y, 1)       # 4: not-taken side
        b.jmp("join")         # 5
        b.label("bigger")
        b.addi(y, y, 100)     # 6: taken side
        b.label("join")
        b.addi(x, x, 1)       # 7: merge point
        b.cmpi(x, 10)         # 8
        b.br("lt", "loop")    # 9
        b.halt()
        return b.build()

    def test_wrong_path_direction(self):
        program = self._branchy_program()
        machine = Machine(program)
        # run until just before the first conditional branch at pc 3
        while machine.pc != 3:
            machine.step()
        regs_before = list(machine.regs)
        # actual direction with x=0 is not-taken; walk the wrong (taken) side
        shadow = wrong_path_walk(program, regs_before, machine.memory,
                                 branch_pc=3, wrong_taken=True, max_uops=10)
        assert shadow[0].pc == 6  # first wrong-path uop is the taken side
        assert shadow[1].pc == 7  # then the merge point

    def test_wrong_path_does_not_corrupt_state(self):
        program = self._branchy_program()
        machine = Machine(program)
        while machine.pc != 3:
            machine.step()
        regs_before = list(machine.regs)
        memory_len = len(machine.memory)
        wrong_path_walk(program, regs_before, machine.memory,
                        branch_pc=3, wrong_taken=True, max_uops=50)
        assert list(machine.regs) == regs_before
        assert len(machine.memory) == memory_len

    def test_wrong_path_stores_visible_to_wrong_path_loads(self):
        b = ProgramBuilder()
        buf = b.zeros("buf", 1)
        addr, v, out = b.regs("addr", "v", "out")
        b.movi(addr, buf)     # 0
        b.movi(v, 77)         # 1
        b.cmpi(v, 0)          # 2
        b.br("eq", "skip")    # 3 (not taken: v=77)
        b.halt()              # 4
        b.label("skip")
        b.st(v, base=addr)    # 5: wrong path store
        b.ld(out, base=addr)  # 6: wrong path load must see 77
        b.halt()              # 7
        program = b.build()
        machine = Machine(program)
        while machine.pc != 3:
            machine.step()
        shadow = wrong_path_walk(program, list(machine.regs), machine.memory,
                                 branch_pc=3, wrong_taken=True, max_uops=10)
        store = shadow[0]
        assert store.store_addr == buf
        assert machine.memory.read(buf) == 0  # real memory untouched

    def test_max_uops_respected(self):
        program = self._branchy_program()
        machine = Machine(program)
        while machine.pc != 3:
            machine.step()
        shadow = wrong_path_walk(program, list(machine.regs), machine.memory,
                                 branch_pc=3, wrong_taken=True, max_uops=3)
        assert len(shadow) == 3


class TestDeterminism:
    def test_same_program_same_trace(self):
        def build(b):
            i, acc = b.regs("i", "acc")
            base = b.data("arr", [5, 3, 8, 1])
            ptr = b.reg("ptr")
            b.movi(ptr, base)
            b.movi(i, 0)
            b.label("loop")
            b.ld(acc, base=ptr, index=i)
            b.addi(i, i, 1)
            b.cmpi(i, 4)
            b.br("lt", "loop")
            b.halt()
        _, first = run_program(build)
        _, second = run_program(build)
        assert [(r.pc, r.taken, r.dst_value) for r in first] == \
               [(r.pc, r.taken, r.dst_value) for r in second]
