"""Regression observatory: baselines, tolerance bands, manifests."""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import RunConfig
from repro.observe import baseline as ob
from repro.observe.manifest import (
    deterministic_subset,
    manifest_fingerprint,
    run_manifest,
)
from repro.session import Session

#: The tiny matrix every run-based test here uses (keeps reruns cheap).
MATRIX = dict(benchmarks=["mcf_17"], variants=["tage64", "mini"],
              instructions=800, warmup=400)


class TestToleranceMath:
    def test_exact_violates_on_any_difference(self):
        tolerance = ob.Tolerance("exact")
        assert not tolerance.violates(3.25, 3.25)
        assert tolerance.violates(3.25, 3.2500001)
        assert tolerance.violates("a" * 64, "b" * 64)
        assert tolerance.violates(None, 7)

    def test_relative_band_is_one_sided(self):
        tolerance = ob.Tolerance("relative", bound=0.5, severity="warn")
        assert not tolerance.violates(1.0, 1.5)    # at the band edge
        assert tolerance.violates(1.0, 1.500001)   # beyond it
        assert not tolerance.violates(1.0, 0.1)    # faster never violates

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ob.Tolerance("fuzzy").violates(1, 2)

    def test_policy_gates_determinism_but_not_timings(self):
        policy = ob.tolerance_policy()
        for category in ("digest", "mpki", "ipc", "chain_coverage",
                         "counter"):
            assert policy[category].mode == "exact"
            assert policy[category].severity == "fail"
        assert policy["timing"].mode == "relative"
        assert policy["timing"].severity == "warn"


class TestStatExtraction:
    def test_flatten_skips_histograms_keeps_scalars(self):
        stats = {"core": {"instructions": 800,
                          "branches": {"mispredicts_per_pc": {
                              "count": 3, "mean": 2.0, "min": 1,
                              "max": 3, "p50": 2, "p90": 3, "p99": 3}}},
                 "predictor": {"accuracy": 0.5}}
        flat = ob.flatten_stats(stats)
        assert flat["core.instructions"] == 800
        assert flat["predictor.accuracy"] == 0.5
        assert flat["core.branches.mispredicts_per_pc.count"] == 3
        assert "core.branches.mispredicts_per_pc.mean" not in flat

    def test_chain_coverage_requires_a_chain_cache(self):
        assert ob.chain_coverage({"core.branches.static_cond": 10}) is None
        flat = {"core.branches.static_cond": 10,
                "dce.chain_cache.covered_branches": 4}
        assert ob.chain_coverage(flat) == pytest.approx(0.4)


class TestManifest:
    def test_deterministic_subset_is_stable_under_fixed_config(self):
        config = RunConfig(instructions=800, warmup=400)
        first = run_manifest(config, phase_seconds={"timing": 1.0})
        second = run_manifest(config, phase_seconds={"timing": 9.0})
        assert deterministic_subset(first) == deterministic_subset(second)
        assert manifest_fingerprint(first) == manifest_fingerprint(second)
        # byte-stable, not just dict-equal
        canonical = lambda m: json.dumps(deterministic_subset(m),
                                         sort_keys=True)
        assert canonical(first) == canonical(second)

    def test_fingerprint_tracks_the_config(self):
        base = run_manifest(RunConfig(instructions=800, warmup=400))
        other = run_manifest(RunConfig(instructions=801, warmup=400))
        assert manifest_fingerprint(base) != manifest_fingerprint(other)

    def test_host_section_carries_forensics(self):
        manifest = run_manifest(RunConfig(),
                                phase_seconds={"baseline": 1.25})
        host = manifest["host"]
        assert host["python"] and host["platform"]
        assert host["phase_seconds"] == {"baseline": 1.25}
        # explicit session configs have no layered provenance
        assert set(manifest["provenance"].values()) == {"explicit"}

    def test_bare_config_and_resolved_config_fingerprint_equal(self):
        from repro.config import resolve_config
        resolved = resolve_config(flags={"instructions": 800,
                                         "warmup": 400})
        bare = run_manifest(resolved.config)
        full = run_manifest(resolved)
        assert bare["config_fingerprint"] == full["config_fingerprint"]
        assert full["provenance"]["instructions"] == "flag"


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded baseline set shared by the check tests (read-only)."""
    out_dir = tmp_path_factory.mktemp("baselines")
    report = ob.record_baselines(out_dir=str(out_dir), **MATRIX)
    return str(out_dir), report


class TestRecord:
    def test_one_file_per_benchmark_with_expected_metrics(self, recorded):
        out_dir, report = recorded
        assert report["written"] == [f"{out_dir}/mcf_17.json"]
        document = json.load(open(report["written"][0]))
        assert document["schema"] == ob.BASELINE_SCHEMA
        assert document["instructions"] == 800
        variants = document["variants"]
        assert set(variants) == {"tage64", "mini"}
        for entry in variants.values():
            assert isinstance(entry["mpki"], float)
            assert isinstance(entry["ipc"], float)
            assert len(entry["digest"]) == 64
            assert entry["counters"]["core.instructions"] == 800
        # chain coverage exists only where Branch Runahead is attached
        assert variants["tage64"]["chain_coverage"] is None
        assert variants["mini"]["chain_coverage"] is not None
        assert document["manifest"]["config_fingerprint"]

    def test_rerecord_is_byte_stable_outside_the_host_section(
            self, recorded, tmp_path):
        out_dir, report = recorded
        again = ob.record_baselines(out_dir=str(tmp_path), **MATRIX)
        first = json.load(open(report["written"][0]))
        second = json.load(open(again["written"][0]))
        # wall-clock lives in exactly two places: the host manifest
        # section and the timing-band baseline; everything else is a
        # deterministic function of the config
        for document in (first, second):
            document["manifest"].pop("host")
            document.pop("host_phase_seconds")
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


class TestCheck:
    def test_identical_rerun_passes(self, recorded):
        out_dir, _ = recorded
        report = ob.check_baselines(baseline_dir=out_dir, **MATRIX)
        assert report["ok"]
        assert report["checked"] == ["mcf_17"]
        assert report["violations"] == []
        assert report["missing_baselines"] == []

    def _tampered(self, out_dir, tmp_path, mutate):
        document = json.load(open(f"{out_dir}/mcf_17.json"))
        mutate(document)
        path = tmp_path / "mcf_17.json"
        path.write_text(json.dumps(document))
        return ob.check_baselines(baseline_dir=str(tmp_path), **MATRIX)

    def test_injected_mpki_drift_fails(self, recorded, tmp_path):
        out_dir, _ = recorded

        def mutate(document):
            document["variants"]["mini"]["mpki"] += 0.5

        report = self._tampered(out_dir, tmp_path, mutate)
        assert not report["ok"]
        [finding] = [f for f in report["violations"]
                     if f["metric"] == "mpki"]
        assert finding["variant"] == "mini"
        assert finding["severity"] == "fail"

    def test_injected_digest_drift_fails(self, recorded, tmp_path):
        out_dir, _ = recorded

        def mutate(document):
            document["variants"]["tage64"]["digest"] = "0" * 64

        report = self._tampered(out_dir, tmp_path, mutate)
        assert not report["ok"]
        assert any(f["metric"] == "digest" and f["variant"] == "tage64"
                   for f in report["violations"])

    def test_injected_counter_drift_fails(self, recorded, tmp_path):
        out_dir, _ = recorded

        def mutate(document):
            document["variants"]["mini"]["counters"][
                "predictor.mispredicts"] += 1

        report = self._tampered(out_dir, tmp_path, mutate)
        assert any(f["metric"] == "counters.predictor.mispredicts"
                   for f in report["violations"])

    def test_region_mismatch_is_one_violation_not_noise(
            self, recorded, tmp_path):
        out_dir, _ = recorded
        matrix = dict(MATRIX, instructions=1200)
        report = ob.check_baselines(baseline_dir=out_dir, **matrix)
        assert not report["ok"]
        assert [f["metric"] for f in report["violations"]] == ["region"]

    def test_missing_baseline_fails(self, recorded):
        out_dir, _ = recorded
        matrix = dict(MATRIX, benchmarks=["mcf_17", "sjeng_06"])
        report = ob.check_baselines(baseline_dir=out_dir, **matrix)
        assert not report["ok"]
        assert report["missing_baselines"] == ["sjeng_06"]
        assert report["checked"] == ["mcf_17"]

    def test_timing_drift_warns_but_never_gates(self, recorded, tmp_path):
        out_dir, _ = recorded

        def mutate(document):
            document["host_phase_seconds"] = {
                phase: 1e-9 for phase in document["host_phase_seconds"]}

        report = self._tampered(out_dir, tmp_path, mutate)
        assert report["ok"]  # timings are warn-severity
        assert report["violations"] == []
        assert any(f["category"] == "timing" for f in report["warnings"])

    def test_explicit_session_is_used(self, recorded):
        out_dir, _ = recorded
        session = Session(RunConfig(instructions=MATRIX["instructions"],
                                    warmup=MATRIX["warmup"]))
        report = ob.check_baselines(baseline_dir=out_dir, session=session,
                                    **MATRIX)
        assert report["ok"]
        # the matrix ran through the supplied session's trace cache
        assert len(session.trace_cache) > 0


class TestReporting:
    def _failing_report(self):
        return {
            "schema": ob.CHECK_SCHEMA, "ok": False,
            "baseline_dir": "baselines",
            "benchmarks": ["mcf_17"], "variants": ["mini"],
            "instructions": 800, "warmup": 400,
            "checked": ["mcf_17"], "missing_baselines": ["sjeng_06"],
            "violations": [ob._violation(
                "mcf_17", "mini", "mpki", "mpki", 3.0, 4.0,
                ob.Tolerance("exact"))],
            "warnings": [ob._violation(
                "mcf_17", None, "host_phase_seconds.timing", "timing",
                1.0, 9.0, ob.Tolerance("relative", 1.0, "warn"))],
        }

    def test_text_report_lists_failures_and_warnings(self):
        text = ob.format_check_report(self._failing_report())
        assert "FAIL     mcf_17/mini: mpki" in text
        assert "warn     mcf_17: host_phase_seconds.timing" in text
        assert "MISSING  sjeng_06" in text
        assert "FAILED: 1 violation(s), 1 missing baseline(s)" in text

    def test_github_annotations(self):
        lines = ob.github_annotations(self._failing_report())
        assert any(line.startswith("::error file=baselines/mcf_17.json")
                   for line in lines)
        assert any(line.startswith("::warning") for line in lines)
        assert any("Missing baseline" in line for line in lines)


class TestBaselineCli:
    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        args = ["--benchmarks", "mcf_17", "--variants", "tage64",
                "--instructions", "600", "--warmup", "300",
                "--dir", str(tmp_path)]
        assert cli_main(["baseline", "record", *args]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 baseline(s)" in out
        assert cli_main(["baseline", "check", *args]) == 0
        assert "ok: all metrics within tolerance" in \
            capsys.readouterr().out

    def test_check_fails_on_drift_with_json_and_annotations(
            self, tmp_path, capsys):
        args = ["--benchmarks", "mcf_17", "--variants", "tage64",
                "--instructions", "600", "--warmup", "300",
                "--dir", str(tmp_path)]
        assert cli_main(["baseline", "record", *args]) == 0
        path = tmp_path / "mcf_17.json"
        document = json.loads(path.read_text())
        document["variants"]["tage64"]["mpki"] += 1.0
        path.write_text(json.dumps(document))
        capsys.readouterr()
        report_path = tmp_path / "check.json"
        code = cli_main(["baseline", "check", *args, "--json", "--github",
                         "--report", str(report_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        report = json.loads(report_path.read_text())
        assert not report["ok"]
        assert report["schema"] == ob.CHECK_SCHEMA


class TestCommittedBaselines:
    """The baselines/ directory this repo actually gates CI on."""

    EXPECTED = ("mcf_17", "sjeng_06", "xz_17")

    def test_quick_matrix_benchmarks_are_all_recorded(self):
        import os
        names = sorted(name[:-len(".json")]
                       for name in os.listdir(ob.BASELINE_DIR)
                       if name.endswith(".json"))
        assert names == sorted(self.EXPECTED)

    @pytest.mark.parametrize("name", EXPECTED)
    def test_committed_baseline_shape(self, name):
        document = json.load(open(f"{ob.BASELINE_DIR}/{name}.json"))
        assert document["schema"] == ob.BASELINE_SCHEMA
        assert document["benchmark"] == name
        assert document["instructions"] == 3000
        assert document["warmup"] == 1500
        for variant in ("tage64", "mini", "big"):
            cell = document["variants"][variant]
            assert cell["digest"]
            assert cell["mpki"] >= 0
        # the stamped manifest must agree with the recorded region
        config = document["manifest"]["config"]
        assert config["instructions"] == document["instructions"]
        assert config["warmup"] == document["warmup"]
        assert manifest_fingerprint(document["manifest"])

    def test_committed_xz_17_baseline_check_passes(self):
        report = ob.check_baselines(
            baseline_dir=ob.BASELINE_DIR, benchmarks=["xz_17"],
            variants=["tage64", "mini", "big"],
            instructions=3000, warmup=1500)
        assert report["checked"] == ["xz_17"]
        assert report["missing_baselines"] == []
        assert report["violations"] == []
        assert report["ok"]
