"""Tests for lineage isolation, cluster resync, and related mechanisms."""

import numpy as np
import pytest

from repro.core.chain import TERMINATED_SELF, WILDCARD, DependenceChain
from repro.core.chain_cache import ChainCache
from repro.core.config import BranchRunaheadConfig, mini
from repro.core.dce import DependenceChainEngine
from repro.core.local_rename import local_rename
from repro.core.prediction_queue import READY, PredictionQueueFile
from repro.emulator.memory import Memory
from repro.isa import uop as U
from repro.isa.program import ProgramBuilder
from repro.isa.registers import NUM_ARCH_REGS
from repro.isa.uop import Uop
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.port import PortTracker
from repro.sim.simulator import simulate


def counting_chain(branch_pc, threshold, reg):
    uops = [
        Uop(U.ADDI, dst=reg, srcs=(reg,), imm=1),
        Uop(U.CMPI, srcs=(reg,), imm=threshold),
        Uop(U.BR, cond=U.LT, target=0),
    ]
    for index, op in enumerate(uops):
        op.pc = branch_pc - len(uops) + 1 + index
    rename = local_rename(uops, {})
    return DependenceChain(
        branch_pc=branch_pc, branch_uop=uops[-1], tag=(branch_pc, WILDCARD),
        exec_uops=uops, timed_flags=rename.timed_flags,
        live_ins=rename.live_ins, live_outs=rename.live_outs,
        pair_map={}, terminated_by=TERMINATED_SELF)


def make_engine(config=None):
    config = config or BranchRunaheadConfig()
    cache = ChainCache(config.chain_cache_entries)
    queues = PredictionQueueFile(config.prediction_queues,
                                 config.prediction_queue_entries)
    engine = DependenceChainEngine(config, cache, queues, MemoryHierarchy(),
                                   Memory(), PortTracker())
    return engine, cache, queues


class TestLineageIsolation:
    def test_independent_lineages_do_not_interfere(self):
        """Two wildcard chains sharing a register must each see their own
        lineage's values (the paper's per-chain local register files)."""
        engine, cache, queues = make_engine()
        # both chains increment THE SAME architectural register R1
        cache.install(counting_chain(0x10, threshold=4, reg=1))
        cache.install(counting_chain(0x20, threshold=4, reg=1))
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        engine.trigger(0x20, True, cycle=0)
        for pc in (0x10, 0x20):
            queue = queues.get(pc)
            outcomes = [queue.consume(10**6)[1] for _ in range(5)]
            # each lineage counts 1,2,3 (taken) then 4,5 (not taken) —
            # interference would double-count and break this sequence
            assert outcomes == [True, True, True, False, False], hex(pc)

    def test_triggered_chain_inherits_producer_values(self):
        """A guard-tagged chain reads live-ins from its producer lineage."""
        engine, cache, queues = make_engine()
        producer = counting_chain(0x10, threshold=1 << 60, reg=1)
        consumer = counting_chain(0x30, threshold=3, reg=1)  # same register
        consumer.tag = (0x10, 1)
        cache.install(producer)
        cache.install(consumer)
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        queue = queues.get(0x30)
        # the root trigger activates the consumer once from the synced state
        # (R1=0 -> 1 < 3: T); after that, consumer instance k reads R1 = k
        # from producer instance k and adds 1: 2 (T), 3 (F), 4 (F)...
        outcomes = [queue.consume(10**6)[1] for _ in range(4)]
        assert outcomes == [True, True, False, False]

    def test_snapshot_is_deep_enough(self):
        engine, cache, queues = make_engine()
        cache.install(counting_chain(0x10, threshold=100, reg=1))
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        # a later sync must not be affected by the earlier lineage state
        engine.sync([0] * NUM_ARCH_REGS, cycle=1000)
        assert engine._sync_regs[1] == 0


class TestTriggerGraph:
    def test_reachable_from_direct(self):
        cache = ChainCache(8)
        chain_a = counting_chain(0x10, 4, 1)
        chain_b = counting_chain(0x20, 4, 2)
        chain_b.tag = (0x10, 0)
        cache.install(chain_a)
        cache.install(chain_b)
        assert cache.reachable_from(0x10) == {0x10, 0x20}

    def test_reachable_from_transitive(self):
        cache = ChainCache(8)
        chain_a = counting_chain(0x10, 4, 1)
        chain_b = counting_chain(0x20, 4, 2)
        chain_b.tag = (0x10, 1)
        chain_c = counting_chain(0x30, 4, 3)
        chain_c.tag = (0x20, 0)
        for chain in (chain_a, chain_b, chain_c):
            cache.install(chain)
        assert cache.reachable_from(0x10) == {0x10, 0x20, 0x30}

    def test_unrelated_not_reached(self):
        cache = ChainCache(8)
        cache.install(counting_chain(0x10, 4, 1))
        cache.install(counting_chain(0x50, 4, 2))
        assert 0x50 not in cache.reachable_from(0x10)

    def test_cycle_terminates(self):
        cache = ChainCache(8)
        chain_a = counting_chain(0x10, 4, 1)
        chain_a.tag = (0x20, WILDCARD)
        chain_b = counting_chain(0x20, 4, 2)
        chain_b.tag = (0x10, WILDCARD)
        cache.install(chain_a)
        cache.install(chain_b)
        assert cache.reachable_from(0x10) == {0x10, 0x20}


class TestClusterResync:
    def _two_branch_program(self):
        """Two independent hard branches with disjoint data."""
        rng = np.random.default_rng(17)
        b = ProgramBuilder("two-independent")
        data_a = b.data("a", [int(v) for v in rng.integers(0, 2, 2048)])
        data_b = b.data("b", [int(v) for v in rng.integers(0, 2, 2048)])
        ar, br_, i, j, va, vb = b.regs("ar", "br", "i", "j", "va", "vb")
        b.movi(ar, data_a)
        b.movi(br_, data_b)
        b.label("loop")
        b.muli(i, i, 5)
        b.addi(i, i, 7)
        b.andi(i, i, 2047)
        b.ld(va, base=ar, index=i)
        b.cmpi(va, 1)
        b.br("eq", "second")
        b.label("second")
        b.muli(j, j, 5)
        b.addi(j, j, 13)
        b.andi(j, j, 2047)
        b.ld(vb, base=br_, index=j)
        b.cmpi(vb, 1)
        b.br("eq", "loop_end")
        b.label("loop_end")
        b.jmp("loop")
        return b.build()

    def test_independent_branches_both_covered(self):
        """A mispredict on one branch must not destroy the other's
        coverage: both must end up with mostly correct predictions."""
        program = self._two_branch_program()
        result = simulate(program, instructions=12_000, warmup=8_000,
                          br_config=mini())
        stats = result.runahead.stats
        covered = [pc for pc in stats.value_checks
                   if stats.value_checks[pc] > 50]
        assert len(covered) == 2
        for pc in covered:
            accuracy = stats.value_correct[pc] / stats.value_checks[pc]
            assert accuracy > 0.9, hex(pc)
        assert result.mpki < 0.5 * simulate(
            program, instructions=12_000, warmup=8_000).mpki


class TestDceMshrs:
    def test_dce_misses_use_separate_file(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access_data(0, cycle=0, from_dce=True)
        assert hierarchy.dce_mshrs.outstanding_count(0) == 1
        assert hierarchy.mshrs.outstanding_count(0) == 0

    def test_core_can_merge_with_dce_fill(self):
        hierarchy = MemoryHierarchy()
        dce_ready = hierarchy.access_data(0, cycle=0, from_dce=True)
        core_ready = hierarchy.access_data(1, cycle=1)  # same line
        assert core_ready == dce_ready  # merged, not a second DRAM trip


class TestAblationFlags:
    def test_in_order_dce_not_faster(self):
        engine_ooo, cache_a, queues_a = make_engine()
        engine_ino, cache_b, queues_b = make_engine(
            BranchRunaheadConfig(dce_in_order=True))
        # chain with two independent loads feeding the compare
        uops = [
            Uop(U.ADDI, dst=1, srcs=(1,), imm=1),
            Uop(U.LD, dst=2, base=3, index=1),
            Uop(U.LD, dst=4, base=5, index=1),
            Uop(U.ADD, dst=2, srcs=(2, 4)),
            Uop(U.CMPI, srcs=(2,), imm=0),
            Uop(U.BR, cond=U.EQ, target=0),
        ]
        for index, op in enumerate(uops):
            op.pc = 0x40 - len(uops) + 1 + index
        rename = local_rename(uops, {})
        def build_chain():
            return DependenceChain(
                branch_pc=0x40, branch_uop=uops[-1], tag=(0x40, WILDCARD),
                exec_uops=uops, timed_flags=rename.timed_flags,
                live_ins=rename.live_ins, live_outs=rename.live_outs,
                pair_map={}, terminated_by=TERMINATED_SELF)
        regs = [0] * NUM_ARCH_REGS
        regs[3] = 0x1000
        regs[5] = 0x9000
        finishes = {}
        for label, (engine, cache, queues) in [
                ("ooo", (engine_ooo, cache_a, queues_a)),
                ("ino", (engine_ino, cache_b, queues_b))]:
            cache.install(build_chain())
            engine.sync(regs, cycle=0)
            engine.trigger(0x40, True, cycle=0)
            entry = queues.get(0x40)._entries[0]
            finishes[label] = entry.available_cycle
        assert finishes["ino"] > finishes["ooo"]

    def test_disable_affector_guard_blocks_agls(self):
        program_result = simulate(
            __import__("repro.workloads.spec.leela_17",
                       fromlist=["build"]).build(),
            instructions=10_000, warmup=6_000,
            br_config=mini(enable_affector_guard=False))
        system = program_result.runahead
        assert all(not entry.agl for entry in system.hbt.entries.values())
        assert all(not chain.has_affector_or_guard
                   for chain in system.chain_cache.chains())


class TestThrottleDecay:
    def test_throttle_recovers_via_retirements(self):
        from repro.core.prediction_queue import PredictionQueue
        queue = PredictionQueue(8)
        queue.update_throttle(False, True)
        queue.update_throttle(False, True)
        assert queue.throttled
        for _ in range(2 * PredictionQueue.THROTTLE_DECAY_PERIOD):
            slot = queue.allocate()
            queue.fill(slot, True, 0)
            queue.consume(0)
            queue.retire_one()
        assert not queue.throttled
