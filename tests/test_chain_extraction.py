"""Tests for chain extraction (CEB walk), local rename, and chains."""

import pytest

from repro.core.ceb import ChainExtractionBuffer
from repro.core.chain import (
    TERMINATED_AFFECTOR_GUARD,
    TERMINATED_SELF,
    WILDCARD,
)
from repro.core.config import BranchRunaheadConfig
from repro.core.hbt import HardBranchTable
from repro.core.local_rename import local_rename
from repro.emulator.machine import Machine
from repro.isa import uop as U
from repro.isa.program import ProgramBuilder
from repro.isa.registers import CC
from repro.isa.uop import Uop


def retire_into_ceb(program, instructions, config=None, hbt=None):
    """Run a program and feed the committed stream into a fresh CEB."""
    config = config or BranchRunaheadConfig()
    hbt = hbt or HardBranchTable(config)
    ceb = ChainExtractionBuffer(config, hbt)
    machine = Machine(program)
    for record in machine.stream(instructions):
        ceb.on_retire(record)
    return ceb, hbt


def loop_program():
    """The leela-like loop: LD offs, ADD, LD board, CMP, BR."""
    b = ProgramBuilder()
    board = b.data("board", [2, 0, 2, 1, 2, 2, 0, 1] * 16)
    boardr, i, value = b.regs("board", "i", "value")
    b.movi(boardr, board)
    b.movi(i, 0)
    b.label("loop")
    b.addi(i, i, 1)            # induction
    b.andi(i, i, 127)
    b.ld(value, base=boardr, index=i)
    b.cmpi(value, 2)
    b.br("eq", "loop")         # hard branch (pc 6)
    b.jmp("loop")
    return b.build(), 6


class TestSelfTerminatedExtraction:
    def test_extracts_wildcard_chain(self):
        program, branch_pc = loop_program()
        ceb, _ = retire_into_ceb(program, 200)
        chain, latency = ceb.extract(branch_pc)
        assert chain is not None
        assert chain.tag == (branch_pc, WILDCARD)
        assert chain.terminated_by == TERMINATED_SELF
        assert latency >= 1

    def test_slice_content(self):
        """The chain must be exactly the dataflow slice of the branch."""
        program, branch_pc = loop_program()
        ceb, _ = retire_into_ceb(program, 200)
        chain, _ = ceb.extract(branch_pc)
        names = [op.name for op in chain.exec_uops]
        assert names == ["ADDI", "ANDI", "LD", "CMPI", "BR"]

    def test_live_ins_and_outs(self):
        program, branch_pc = loop_program()
        ceb, _ = retire_into_ceb(program, 200)
        chain, _ = ceb.extract(branch_pc)
        # live-ins: the induction register (previous value) + board base
        assert len(chain.live_ins) == 2
        assert CC in chain.live_outs

    def test_irrelevant_uops_excluded(self):
        b = ProgramBuilder()
        data = b.data("data", [1, 2, 3, 4] * 32)
        datar, i, value, junk = b.regs("data", "i", "value", "junk")
        b.movi(datar, data)
        b.movi(i, 0)
        b.movi(junk, 0)
        b.label("loop")
        b.addi(junk, junk, 7)       # dead to the branch
        b.muli(junk, junk, 3)       # dead to the branch
        b.addi(i, i, 1)
        b.andi(i, i, 127)
        b.ld(value, base=datar, index=i)
        b.cmpi(value, 2)
        b.br("eq", "loop")
        b.jmp("loop")
        program = b.build()
        branch_pc = next(op.pc for op in program.uops if op.is_cond_branch)
        ceb, _ = retire_into_ceb(program, 300)
        chain, _ = ceb.extract(branch_pc)
        assert all(op.name != "MULI" for op in chain.exec_uops)


class TestTerminationAndAborts:
    def test_affector_guard_termination(self):
        program, branch_pc = loop_program()
        config = BranchRunaheadConfig()
        hbt = HardBranchTable(config)
        # install another loop branch as a (fake) hard-ish guard of ours:
        # put a second conditional in the program instead
        b = ProgramBuilder()
        data = b.data("data", [0, 1] * 64)
        datar, i, value = b.regs("data", "i", "value")
        b.movi(datar, data)
        b.movi(i, 0)
        b.label("loop")
        b.addi(i, i, 1)
        b.andi(i, i, 127)
        b.ld(value, base=datar, index=i)
        b.cmpi(value, 0)
        b.br("eq", "skip")          # guard branch (pc 6)
        b.ld(value, base=datar, index=i, disp=1)
        b.cmpi(value, 1)
        b.br("eq", "loop")          # guarded hard branch (pc 9)
        b.label("skip")
        b.jmp("loop")
        program = b.build()
        # register the guard relation with balanced outcomes so neither
        # branch looks biased or well-predicted
        for k in range(100):
            hbt.on_branch_retired(9, bool(k % 2), mispredicted=True)
            hbt.on_branch_retired(6, bool(k % 2), mispredicted=True)
        assert hbt.add_affector_guard(9, 6)
        ceb = ChainExtractionBuffer(config, hbt)
        machine = Machine(program)
        for record in machine.stream(300):
            ceb.on_retire(record)
        chain, _ = ceb.extract(9)
        assert chain is not None
        assert chain.terminated_by == TERMINATED_AFFECTOR_GUARD
        assert chain.tag[0] == 6
        assert chain.tag[1] in (0, 1)

    def test_abort_on_divide_in_slice(self):
        b = ProgramBuilder()
        data = b.data("data", [5, 9] * 64)
        datar, i, value, d = b.regs("data", "i", "value", "d")
        b.movi(datar, data)
        b.movi(i, 0)
        b.movi(d, 3)
        b.label("loop")
        b.addi(i, i, 1)
        b.andi(i, i, 127)
        b.ld(value, base=datar, index=i)
        b.div(value, value, d)      # expensive op feeds the branch
        b.cmpi(value, 2)
        b.br("eq", "loop")
        b.jmp("loop")
        program = b.build()
        branch_pc = next(op.pc for op in program.uops if op.is_cond_branch)
        ceb, _ = retire_into_ceb(program, 300)
        chain, _ = ceb.extract(branch_pc)
        assert chain is None
        assert ceb.stats.aborted_unchainable == 1

    def test_abort_when_chain_too_long(self):
        b = ProgramBuilder()
        x = b.reg("x")
        b.movi(x, 1)
        b.label("loop")
        for _ in range(20):          # 20 dependent uops feed the branch
            b.addi(x, x, 1)
        b.cmpi(x, 0)
        b.br("ne", "loop")
        b.halt()
        program = b.build()
        branch_pc = next(op.pc for op in program.uops if op.is_cond_branch)
        config = BranchRunaheadConfig(max_chain_length=16)
        ceb, _ = retire_into_ceb(program, 200, config=config)
        chain, _ = ceb.extract(branch_pc)
        assert chain is None
        assert ceb.stats.aborted_too_long == 1

    def test_abort_without_termination(self):
        """A branch seen once, fed by a long-gone producer: no chain."""
        b = ProgramBuilder()
        x = b.reg("x")
        b.movi(x, 5)
        b.cmpi(x, 5)
        b.br("eq", "end")
        b.label("end")
        b.halt()
        program = b.build()
        ceb, _ = retire_into_ceb(program, 10)
        chain, _ = ceb.extract(2)
        assert chain is None
        assert ceb.stats.aborted_no_termination == 1


class TestStoreLoadPairs:
    def test_store_load_pair_detected_and_eliminated(self):
        b = ProgramBuilder()
        buf = b.zeros("buf", 4)
        data = b.data("data", [1, 0] * 64)
        bufr, datar, i, value, spill = b.regs(
            "buf", "data", "i", "value", "spill")
        b.movi(bufr, buf)
        b.movi(datar, data)
        b.movi(i, 0)
        b.label("loop")
        b.addi(i, i, 1)
        b.andi(i, i, 127)
        b.ld(spill, base=datar, index=i)
        b.st(spill, base=bufr)        # spill
        b.ld(value, base=bufr)        # reload (store-load pair)
        b.cmpi(value, 1)
        b.br("eq", "loop")
        b.jmp("loop")
        program = b.build()
        branch_pc = next(op.pc for op in program.uops if op.is_cond_branch)
        ceb, _ = retire_into_ceb(program, 300)
        chain, _ = ceb.extract(branch_pc)
        assert chain is not None
        assert chain.pair_map  # the reload is paired with the spill
        # neither the store nor the paired load survives elimination
        for index, op in enumerate(chain.exec_uops):
            if op.is_store:
                assert not chain.timed_flags[index]
        # the chain still sees through the spill to the data load
        assert any(op.is_load and chain.timed_flags[i]
                   for i, op in enumerate(chain.exec_uops))


class TestLocalRename:
    def test_mov_elimination(self):
        uops = [
            Uop(U.MOVI, dst=1, imm=5),
            Uop(U.MOV, dst=2, srcs=(1,)),
            Uop(U.CMPI, srcs=(2,), imm=5),
            Uop(U.BR, cond=U.EQ, target=0),
        ]
        result = local_rename(uops, {})
        assert result.timed_flags == [True, False, True, True]
        assert result.length == 3

    def test_live_in_identification(self):
        uops = [
            Uop(U.ADDI, dst=1, srcs=(1,), imm=4),  # reads previous R1
            Uop(U.CMPI, srcs=(1,), imm=0),
            Uop(U.BR, cond=U.NE, target=0),
        ]
        result = local_rename(uops, {})
        assert 1 in result.live_ins
        assert 1 in result.live_outs and CC in result.live_outs

    def test_store_load_pair_forwarding(self):
        uops = [
            Uop(U.MOVI, dst=1, imm=9),
            Uop(U.ST, srcs=(1,), base=2),
            Uop(U.LD, dst=3, base=2),
            Uop(U.CMPI, srcs=(3,), imm=9),
            Uop(U.BR, cond=U.EQ, target=0),
        ]
        result = local_rename(uops, {2: 1})  # load idx 2 pairs store idx 1
        assert result.timed_flags == [True, False, False, True, True]
        # store base register is a live-in (read, never defined)
        assert 2 in result.live_ins

    def test_local_register_count_minimal(self):
        uops = [
            Uop(U.MOVI, dst=1, imm=1),
            Uop(U.ADDI, dst=1, srcs=(1,), imm=1),  # redefines R1
            Uop(U.CMPI, srcs=(1,), imm=2),
            Uop(U.BR, cond=U.EQ, target=0),
        ]
        result = local_rename(uops, {})
        assert result.num_local_regs == 3  # two R1 values + CC
