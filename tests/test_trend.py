"""BENCH trajectory trend report: loading, regression math, CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.observe import trend as ot
from repro.sim import bench


def make_report(baseline=70_000, optimized=80_000, speedup=2.5,
                digests=None, instructions=3000, warmup=1500,
                benchmarks=("sjeng_06", "mcf_17"),
                variants=("tage64", "mini", "big"),
                schema="repro-bench-v2", manifest=None):
    report = {
        "schema": schema,
        "benchmarks": list(benchmarks),
        "variants": list(variants),
        "instructions": instructions,
        "warmup": warmup,
        "cells": len(benchmarks) * len(variants),
        "jobs": 1,
        "baseline": {"uops_per_second": baseline},
        "optimized": {"uops_per_second": optimized},
        "mpki_replay": {"speedup": speedup},
        "digests": digests or {"sjeng_06/tage64": "a" * 64},
    }
    if manifest is not None:
        report["manifest"] = manifest
    return report


def write_reports(tmp_path, reports):
    paths = []
    for index, report in enumerate(reports):
        path = tmp_path / f"BENCH_{index:02d}.json"
        path.write_text(json.dumps(report))
        paths.append(str(path))
    return paths


class TestLoading:
    def test_loads_in_input_order(self, tmp_path):
        paths = write_reports(tmp_path, [make_report(), make_report()])
        entries = ot.load_reports(paths)
        assert [entry["path"] for entry in entries] == paths

    def test_rejects_non_bench_documents(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": "repro-baseline-v1"}')
        with pytest.raises(ValueError, match="not a bench report"):
            ot.load_reports([str(path)])

    def test_rejects_unreadable_files(self, tmp_path):
        with pytest.raises(ValueError, match="cannot load"):
            ot.load_reports([str(tmp_path / "BENCH_missing.json")])

    def test_default_paths_glob_sorted(self, tmp_path):
        for name in ("BENCH_seed.json", "BENCH_02.json", "notes.json"):
            (tmp_path / name).write_text("{}")
        paths = ot.default_report_paths(str(tmp_path))
        assert [p.rsplit("/", 1)[1] for p in paths] == \
            ["BENCH_02.json", "BENCH_seed.json"]


class TestTrendMath:
    def test_steady_throughput_is_ok(self, tmp_path):
        paths = write_reports(tmp_path, [
            make_report(baseline=70_000), make_report(baseline=71_000)])
        trend = ot.build_trend(ot.load_reports(paths))
        assert trend["ok"]
        assert trend["passes"]["baseline"]["latest"] == 71_000
        assert not trend["passes"]["baseline"]["regressed"]

    def test_regression_vs_best_recorded_run(self, tmp_path):
        paths = write_reports(tmp_path, [
            make_report(optimized=100_000),
            make_report(optimized=90_000),
            make_report(optimized=40_000)])  # 60% below best
        trend = ot.build_trend(ot.load_reports(paths), threshold=0.5)
        assert not trend["ok"]
        data = trend["passes"]["optimized"]
        assert data["regressed"]
        assert data["best"]["uops_per_second"] == 100_000
        assert any("optimized" in line for line in trend["regressions"])
        # the baseline pass did not move and stays clean
        assert not trend["passes"]["baseline"]["regressed"]

    def test_threshold_is_respected(self, tmp_path):
        paths = write_reports(tmp_path, [
            make_report(optimized=100_000), make_report(optimized=55_000)])
        loose = ot.build_trend(ot.load_reports(paths), threshold=0.5)
        tight = ot.build_trend(ot.load_reports(paths), threshold=0.25)
        assert loose["ok"] and not tight["ok"]

    def test_different_matrix_is_listed_but_excluded(self, tmp_path):
        paths = write_reports(tmp_path, [
            make_report(optimized=500_000, instructions=500),
            make_report(optimized=100_000),
            make_report(optimized=90_000)])
        trend = ot.build_trend(ot.load_reports(paths))
        assert trend["ok"]  # the 500k run is not comparable, not "best"
        rows = trend["reports"]
        assert [row["comparable"] for row in rows] == [False, True, True]
        assert trend["passes"]["optimized"]["best"][
            "uops_per_second"] == 100_000

    def test_digest_changes_tracked_per_cell(self, tmp_path):
        paths = write_reports(tmp_path, [
            make_report(digests={"sjeng_06/tage64": "a" * 64}),
            make_report(digests={"sjeng_06/tage64": "a" * 64}),
            make_report(digests={"sjeng_06/tage64": "b" * 64})])
        trend = ot.build_trend(ot.load_reports(paths))
        assert trend["changed_cells"] == ["sjeng_06/tage64"]
        track = trend["cells"]["sjeng_06/tage64"]
        assert [point["digest"][0] for point in track["digests"]] == \
            ["a", "b"]

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError, match="no bench reports"):
            ot.build_trend([])

    def test_v3_manifest_provenance_surfaces(self, tmp_path):
        manifest = {"config_fingerprint": "f" * 64,
                    "host": {"git_sha": "abc123def456"}}
        paths = write_reports(tmp_path, [
            make_report(), make_report(schema="repro-bench-v3",
                                       manifest=manifest)])
        trend = ot.build_trend(ot.load_reports(paths))
        assert trend["reports"][1]["git_sha"] == "abc123def456"
        assert trend["reports"][0]["git_sha"] is None

    def test_format_mentions_every_report_and_verdict(self, tmp_path):
        paths = write_reports(tmp_path, [
            make_report(optimized=100_000),
            make_report(optimized=40_000)])
        trend = ot.build_trend(ot.load_reports(paths))
        text = ot.format_trend_report(trend)
        assert "BENCH_00.json" in text and "BENCH_01.json" in text
        assert "REGRESSED" in text
        assert "REGRESSION: optimized" in text


class TestTrendCli:
    def test_ok_trajectory_exits_zero(self, tmp_path, capsys):
        paths = write_reports(tmp_path, [make_report(), make_report()])
        assert cli_main(["trend", *paths, "--fail-on-regression"]) == 0
        assert "no throughput regressions" in capsys.readouterr().out

    def test_regression_gates_only_when_asked(self, tmp_path, capsys):
        paths = write_reports(tmp_path, [
            make_report(optimized=100_000), make_report(optimized=40_000)])
        assert cli_main(["trend", *paths]) == 0
        capsys.readouterr()
        assert cli_main(["trend", *paths, "--fail-on-regression"]) == 1

    def test_json_and_report_file(self, tmp_path, capsys):
        paths = write_reports(tmp_path, [make_report(), make_report()])
        out_path = tmp_path / "trend.json"
        assert cli_main(["trend", *paths, "--json",
                         "--report", str(out_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out_path.read_text())
        assert printed["schema"] == ot.TREND_SCHEMA
        assert written == printed

    def test_no_reports_is_a_usage_error(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["trend"]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_real_bench_report_feeds_the_trend(self, tmp_path, capsys):
        """End to end: a fresh manifest-stamped run trends against a
        committed-style older report."""
        report = bench.run_bench(benchmarks=["sjeng_06"],
                                 variants=["tage64"],
                                 instructions=600, warmup=300)
        assert report["schema"] == "repro-bench-v5"
        assert report["manifest"]["config_fingerprint"]
        old = make_report(benchmarks=("sjeng_06",), variants=("tage64",),
                          instructions=600, warmup=300,
                          baseline=report["baseline"]["uops_per_second"],
                          optimized=report["optimized"]["uops_per_second"],
                          digests=report["digests"])
        paths = write_reports(tmp_path, [old])
        new_path = tmp_path / "BENCH_new.json"
        new_path.write_text(json.dumps(report))
        code = cli_main(["trend", *paths, str(new_path),
                         "--fail-on-regression"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_new.json" in out
