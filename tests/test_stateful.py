"""Model-based (stateful) property tests for the bookkeeping structures.

A reference model shadows each structure through random operation
sequences; hypothesis shrinks any divergence to a minimal reproduction.
"""

from collections import OrderedDict, deque

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.chain import TERMINATED_SELF, WILDCARD, DependenceChain
from repro.core.chain_cache import ChainCache
from repro.core.prediction_queue import INACTIVE, LATE, READY, PredictionQueue
from repro.isa import uop as U
from repro.isa.uop import Uop


class PredictionQueueMachine(RuleBasedStateMachine):
    """The queue against a plain-list model of allocate/fill/consume/retire
    with fetch-pointer checkpoint/restore."""

    CAPACITY = 6

    def __init__(self):
        super().__init__()
        self.queue = PredictionQueue(self.CAPACITY)
        self.model = deque()        # entries: dict(value, avail, consumed)
        self.model_base = 0         # slot index of model[0] (= retire_ptr)
        self.model_fetch = 0        # absolute fetch pointer
        self.model_push = 0
        self.checkpoints = []
        self.cycle = 0

    def _occupancy(self):
        return self.model_push - self.model_base

    @rule()
    def advance_time(self):
        self.cycle += 7

    @rule(value=st.booleans(), delay=st.integers(min_value=0, max_value=30))
    def allocate_and_fill(self, value, delay):
        slot = self.queue.allocate()
        if self._occupancy() >= self.CAPACITY:
            assert slot == -1
            return
        assert slot == self.model_push
        self.model.append({"value": value, "avail": self.cycle + delay,
                           "consumed": False})
        self.model_push += 1
        self.queue.fill(slot, value, self.cycle + delay)

    @rule()
    def allocate_unfilled(self):
        slot = self.queue.allocate()
        if self._occupancy() >= self.CAPACITY:
            assert slot == -1
            return
        self.model.append({"value": None, "avail": None, "consumed": False})
        self.model_push += 1

    @rule()
    def consume(self):
        category, value = self.queue.consume(self.cycle)
        if self.model_fetch >= self.model_push:
            assert category == INACTIVE and value is None
            return
        entry = self.model[self.model_fetch - self.model_base]
        entry["consumed"] = True
        self.model_fetch += 1
        if entry["value"] is None or entry["avail"] > self.cycle:
            assert category == LATE
            assert value == entry["value"]
        else:
            assert category == READY and value == entry["value"]

    @rule()
    def retire(self):
        self.queue.retire_one()
        if self.model_base < self.model_fetch:
            self.model.popleft()
            self.model_base += 1
            # invalidate checkpoints that fell behind the retire pointer
            self.checkpoints = [c for c in self.checkpoints
                                if c >= self.model_base]

    @rule()
    def checkpoint(self):
        self.checkpoints.append(self.queue.checkpoint())
        assert self.checkpoints[-1] == self.model_fetch

    @precondition(lambda self: self.checkpoints)
    @rule()
    def restore_latest(self):
        checkpoint = self.checkpoints.pop()
        if not self.model_base <= checkpoint <= self.model_fetch:
            return
        self.queue.restore(checkpoint)
        for offset in range(checkpoint, self.model_fetch):
            self.model[offset - self.model_base]["consumed"] = False
        self.model_fetch = checkpoint

    @rule()
    def flush(self):
        dropped = self.queue.flush_unconsumed()
        expected = self.model_push - self.model_fetch
        assert dropped == expected
        for _ in range(expected):
            self.model.pop()
        self.model_push = self.model_fetch

    @invariant()
    def pointers_ordered(self):
        assert self.queue.retire_ptr <= self.queue.fetch_ptr \
            <= self.queue.push_ptr
        assert self.queue.retire_ptr == self.model_base
        assert self.queue.fetch_ptr == self.model_fetch
        assert self.queue.push_ptr == self.model_push

    @invariant()
    def occupancy_bounded(self):
        assert 0 <= self.queue.occupancy() <= self.CAPACITY


PredictionQueueMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
TestPredictionQueueModel = PredictionQueueMachine.TestCase


def _chain(branch_pc, tag):
    branch = Uop(U.BR, cond=U.EQ, target=0)
    branch.pc = branch_pc
    return DependenceChain(
        branch_pc=branch_pc, branch_uop=branch, tag=tag,
        exec_uops=[branch], timed_flags=[True], live_ins=(), live_outs=(),
        pair_map={}, terminated_by=TERMINATED_SELF)


class ChainCacheMachine(RuleBasedStateMachine):
    """The LRU chain cache against an OrderedDict reference."""

    CAPACITY = 4

    def __init__(self):
        super().__init__()
        self.cache = ChainCache(self.CAPACITY)
        self.model = OrderedDict()

    @rule(branch=st.integers(min_value=0, max_value=6),
          trigger=st.integers(min_value=0, max_value=6),
          outcome=st.sampled_from([0, 1, WILDCARD]))
    def install(self, branch, trigger, outcome):
        chain = _chain(branch, (trigger, outcome))
        key = chain.key()
        self.cache.install(chain)
        if key in self.model:
            del self.model[key]
        elif len(self.model) >= self.CAPACITY:
            self.model.popitem(last=False)
        self.model[key] = chain

    @rule(trigger=st.integers(min_value=0, max_value=6),
          outcome=st.booleans())
    def match(self, trigger, outcome):
        got = {chain.key() for chain in self.cache.matching(trigger, outcome)}
        bit = 1 if outcome else 0
        expected = []  # in model iteration order, matching the cache's scan
        for (branch, (tag_pc, tag_outcome)), chain in list(
                self.model.items()):
            if tag_pc == trigger and tag_outcome in (bit, WILDCARD):
                expected.append(chain.key())
        assert got == set(expected)
        # LRU refresh in the model, in the same scan order as the cache
        for key in expected:
            chain = self.model.pop(key)
            self.model[key] = chain

    @rule(branch=st.integers(min_value=0, max_value=6))
    def remove(self, branch):
        removed = self.cache.remove_for_branch(branch)
        victims = [key for key in self.model if key[0] == branch]
        assert removed == len(victims)
        for key in victims:
            del self.model[key]

    @invariant()
    def same_contents(self):
        assert {c.key() for c in self.cache.chains()} == set(self.model)

    @invariant()
    def capacity_respected(self):
        assert len(self.cache) <= self.CAPACITY


ChainCacheMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=30, deadline=None)
TestChainCacheModel = ChainCacheMachine.TestCase
