"""Tests for the Dependence Chain Engine (§4.2) and initiation modes."""

import pytest

from repro.core.chain import TERMINATED_SELF, WILDCARD, DependenceChain
from repro.core.chain_cache import ChainCache
from repro.core.config import (
    INDEPENDENT_EARLY,
    NON_SPECULATIVE,
    PREDICTIVE,
    BranchRunaheadConfig,
)
from repro.core.dce import DependenceChainEngine
from repro.core.local_rename import local_rename
from repro.core.prediction_queue import READY, PredictionQueueFile
from repro.emulator.memory import Memory
from repro.isa import uop as U
from repro.isa.registers import NUM_ARCH_REGS
from repro.isa.uop import Uop
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.port import PortTracker


def counting_chain(branch_pc=0x10, threshold=4, reg=1):
    """Chain: R1 += 1; CMP R1, threshold; BR LT (taken while R1 < thr)."""
    uops = [
        Uop(U.ADDI, dst=reg, srcs=(reg,), imm=1),
        Uop(U.CMPI, srcs=(reg,), imm=threshold),
        Uop(U.BR, cond=U.LT, target=0),
    ]
    for index, op in enumerate(uops):
        op.pc = branch_pc - len(uops) + 1 + index
    rename = local_rename(uops, {})
    return DependenceChain(
        branch_pc=branch_pc, branch_uop=uops[-1], tag=(branch_pc, WILDCARD),
        exec_uops=uops, timed_flags=rename.timed_flags,
        live_ins=rename.live_ins, live_outs=rename.live_outs,
        pair_map={}, terminated_by=TERMINATED_SELF,
        num_local_regs=rename.num_local_regs)


def loading_chain(branch_pc=0x20, base_reg=2, index_reg=3):
    """Chain: R3 += 1; LD R4 <- [R2+R3]; CMP R4, 0; BR EQ."""
    uops = [
        Uop(U.ADDI, dst=index_reg, srcs=(index_reg,), imm=1),
        Uop(U.LD, dst=4, base=base_reg, index=index_reg),
        Uop(U.CMPI, srcs=(4,), imm=0),
        Uop(U.BR, cond=U.EQ, target=0),
    ]
    for index, op in enumerate(uops):
        op.pc = branch_pc - len(uops) + 1 + index
    rename = local_rename(uops, {})
    return DependenceChain(
        branch_pc=branch_pc, branch_uop=uops[-1], tag=(branch_pc, WILDCARD),
        exec_uops=uops, timed_flags=rename.timed_flags,
        live_ins=rename.live_ins, live_outs=rename.live_outs,
        pair_map={}, terminated_by=TERMINATED_SELF,
        num_local_regs=rename.num_local_regs)


def make_engine(config=None, memory=None):
    config = config or BranchRunaheadConfig()
    cache = ChainCache(config.chain_cache_entries)
    queues = PredictionQueueFile(config.prediction_queues,
                                 config.prediction_queue_entries)
    engine = DependenceChainEngine(
        config, cache, queues, MemoryHierarchy(), memory or Memory(),
        PortTracker())
    return engine, cache, queues


class TestFunctionalExecution:
    def test_chain_computes_outcomes_across_instances(self):
        """Continuous execution: a self-triggering chain runs 'in a loop'."""
        engine, cache, queues = make_engine()
        cache.install(counting_chain(threshold=4))
        regs = [0] * NUM_ARCH_REGS
        engine.sync(regs, cycle=0)
        executed = engine.trigger(0x10, True, cycle=0)
        # run-ahead limit bounds eager production
        assert executed == engine.config.runahead_limit
        queue = queues.get(0x10)
        # R1 counts 1,2,3 (taken: < 4), then 4,5,... (not taken)
        outcomes = [queue.consume(10_000)[1] for _ in range(6)]
        assert outcomes == [True, True, True, False, False, False]

    def test_sync_resets_values(self):
        engine, cache, queues = make_engine()
        cache.install(counting_chain(threshold=4))
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        regs = [0] * NUM_ARCH_REGS
        regs[1] = 100  # way past the threshold
        engine.sync(regs, cycle=50)
        engine.trigger(0x10, True, cycle=50)
        queue = queues.get(0x10)
        # drain the pre-sync entries (flushed in real use; here: consume)
        last = None
        while True:
            category, value = queue.consume(100_000)
            if category != READY:
                break
            last = value
        assert last is False  # 101 < 4 is False

    def test_chain_loads_read_shared_memory(self):
        memory = Memory({0x100 + 1: 0, 0x100 + 2: 7})
        engine, cache, queues = make_engine(memory=memory)
        cache.install(loading_chain())
        regs = [0] * NUM_ARCH_REGS
        regs[2] = 0x100  # base
        regs[3] = 0      # index
        engine.sync(regs, cycle=0)
        engine.trigger(0x20, True, cycle=0)
        queue = queues.get(0x20)
        first = queue.consume(100_000)
        second = queue.consume(100_000)
        assert first == (READY, True)    # mem[0x101] == 0
        assert second == (READY, False)  # mem[0x102] == 7


class TestTimingAndResources:
    def test_predictions_become_available_later_with_sync_latency(self):
        engine, cache, queues = make_engine()
        cache.install(counting_chain())
        engine.sync([0] * NUM_ARCH_REGS, cycle=100)
        engine.trigger(0x10, True, cycle=100)
        queue = queues.get(0x10)
        category, _ = queue.consume(cycle=100)
        assert category != READY  # first outcome can't be ready instantly

    def test_window_slots_limit_concurrency(self):
        small = BranchRunaheadConfig(window_slots=1)
        engine, cache, _ = make_engine(config=small)
        cache.install(counting_chain())
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        assert engine.stats.window_stalls > 0

    def test_uop_and_load_accounting(self):
        memory = Memory()
        engine, cache, _ = make_engine(memory=memory)
        cache.install(loading_chain())
        regs = [0] * NUM_ARCH_REGS
        regs[2] = 0x100
        engine.sync(regs, cycle=0)
        executed = engine.trigger(0x20, True, cycle=0)
        stats = engine.stats
        assert stats.instances_executed == executed
        assert stats.loads_executed == executed          # one load per chain
        assert stats.uops_executed == executed * 4       # 4 timed uops

    def test_dynamic_average_chain_length(self):
        engine, cache, _ = make_engine()
        cache.install(counting_chain())
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        assert engine.stats.dynamic_average_chain_length() == pytest.approx(3)


class TestParkingAndUnparking:
    def test_parks_when_runahead_limit_reached(self):
        engine, cache, queues = make_engine()
        cache.install(counting_chain())
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        assert engine.stats.parked_events >= 1

    def test_slot_free_resumes_production(self):
        engine, cache, queues = make_engine()
        cache.install(counting_chain())
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        produced_before = engine.stats.instances_executed
        queue = queues.get(0x10)
        queue.consume(100_000)
        queue.retire_one()
        engine.on_queue_slot_freed(0x10, cycle=500)
        assert engine.stats.instances_executed == produced_before + 1


class TestInitiationModes:
    def _guarded_pair(self, mode):
        config = BranchRunaheadConfig(initiation_mode=mode)
        engine, cache, queues = make_engine(config=config)
        cache.install(counting_chain(branch_pc=0x10, threshold=1 << 60))
        guarded = counting_chain(branch_pc=0x30, threshold=1 << 60, reg=5)
        guarded.tag = (0x10, 1)  # triggered when 0x10 is taken
        cache.install(guarded)
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        return engine, queues

    @pytest.mark.parametrize("mode", [NON_SPECULATIVE, INDEPENDENT_EARLY,
                                      PREDICTIVE])
    def test_guarded_chain_initiated_in_every_mode(self, mode):
        engine, queues = self._guarded_pair(mode)
        assert queues.get(0x30) is not None
        assert queues.get(0x30).occupancy() > 0

    def test_predictive_is_no_later_than_non_speculative(self):
        """§4.1: predictive initiation can only improve timeliness."""
        results = {}
        for mode in (NON_SPECULATIVE, PREDICTIVE):
            engine, queues = self._guarded_pair(mode)
            entry = queues.get(0x30)._entries[0]
            results[mode] = entry.available_cycle
        assert results[PREDICTIVE] <= results[NON_SPECULATIVE]

    def test_predictive_flushes_on_wrong_guess(self):
        config = BranchRunaheadConfig(initiation_mode=PREDICTIVE)
        engine, cache, queues = make_engine(config=config)
        # alternating chain: R1+=1; CMP R1&1... use threshold chain that
        # flips: counting chain around threshold flips once; rely on the
        # initiation predictor mispredicting the flip
        cache.install(counting_chain(branch_pc=0x10, threshold=3))
        exact = counting_chain(branch_pc=0x40, threshold=1 << 60, reg=6)
        exact.tag = (0x10, 1)
        cache.install(exact)
        engine.sync([0] * NUM_ARCH_REGS, cycle=0)
        engine.trigger(0x10, True, cycle=0)
        assert engine.stats.flushed_uops > 0
