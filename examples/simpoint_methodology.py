"""The paper's §5.1 measurement methodology, end to end.

"We use the SimPoints methodology to identify anywhere between one to five
representative regions per benchmark ... then compute the weighted average
of all the regions."

This example runs that pipeline on one benchmark: collect basic-block
vectors per interval, cluster them, simulate each representative region
(baseline and Mini Branch Runahead), and report the weighted-average MPKI
improvement — comparing it against naively simulating a single prefix.

Run:  python examples/simpoint_methodology.py
"""

from repro import load_benchmark, mini, simulate
from repro.sim.sampling import select_simpoints, weighted_metric

WORKLOAD = "deepsjeng_17"
TOTAL = 60_000
INTERVAL = 10_000


def simulate_region(program, start, length, br_config=None):
    """Simulate one region: fast-forward functionally, then measure
    (half the region warms structures, half is measured)."""
    return simulate(program, start_instruction=start,
                    instructions=length // 2, warmup=length // 2,
                    br_config=br_config)


def main():
    program = load_benchmark(WORKLOAD)
    simpoints = select_simpoints(program, total_instructions=TOTAL,
                                 interval_length=INTERVAL)
    print(f"{WORKLOAD}: {len(simpoints)} representative region(s)")
    for point in simpoints:
        print(f"  {point}")

    improvements = []
    for point in simpoints:
        base = simulate_region(program, point.start_instruction, INTERVAL)
        runahead = simulate_region(program, point.start_instruction,
                                   INTERVAL, br_config=mini())
        improvement = 100 * (base.mpki - runahead.mpki) / max(base.mpki, 1e-9)
        improvements.append(improvement)
        print(f"  region @{point.start_instruction}: MPKI {base.mpki:.1f} "
              f"-> {runahead.mpki:.1f} ({improvement:+.1f}%)")

    weighted = weighted_metric(simpoints, improvements)
    print(f"\nweighted-average MPKI improvement: {weighted:+.1f}%")

    # naive single-prefix measurement, for contrast
    base = simulate(program, instructions=INTERVAL // 2,
                    warmup=INTERVAL // 2)
    runahead = simulate(program, instructions=INTERVAL // 2,
                        warmup=INTERVAL // 2, br_config=mini())
    naive = 100 * (base.mpki - runahead.mpki) / max(base.mpki, 1e-9)
    print(f"single-prefix estimate:             {naive:+.1f}%")


if __name__ == "__main__":
    main()
