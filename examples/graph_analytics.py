"""Graph analytics under Branch Runahead: the GAP kernels.

The paper's key claim for GAP workloads (Figure 11): their branches are
dominated by data-dependent decisions (frontier membership, label order,
relaxations) that even an unlimited-storage history predictor (MTAGE-SC)
cannot learn, while dependence-chain pre-computation can.  This example
runs the six GAP kernels under TAGE-SC-L, MTAGE-SC, and Mini Branch
Runahead and prints the comparison.

Run:  python examples/graph_analytics.py
"""

from repro import load_benchmark, mini, mtage_sc, simulate
from repro.workloads import suite

INSTRUCTIONS = 10_000
WARMUP = 6_000


def main():
    print(f"{'kernel':8s} {'TAGE-SC-L':>12s} {'MTAGE-SC':>12s} "
          f"{'Mini BR':>12s}   (branch MPKI, lower is better)")
    for name in suite.names("gap"):
        program = load_benchmark(name)
        tage = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP)
        mtage = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP,
                         predictor=mtage_sc())
        runahead = simulate(program, instructions=INSTRUCTIONS,
                            warmup=WARMUP, br_config=mini())
        print(f"{name:8s} {tage.mpki:12.2f} {mtage.mpki:12.2f} "
              f"{runahead.mpki:12.2f}")
    print("\nMTAGE's unlimited history barely helps on graph branches;"
          "\npre-computing the branch with its own slice does.")


if __name__ == "__main__":
    main()
