"""Quickstart: Branch Runahead vs TAGE-SC-L on one workload.

Runs the paper's motivating benchmark (leela) on the baseline 64KB
TAGE-SC-L core and again with Mini Branch Runahead attached, then prints
the headline metrics and the DCE prediction breakdown (Figure 12's
categories).

Run:  python examples/quickstart.py
"""

from repro import load_benchmark, mini, simulate

INSTRUCTIONS = 20_000
WARMUP = 10_000


def main():
    program = load_benchmark("leela_17")
    print(f"workload: {program.name} ({len(program)} static uops)\n")

    baseline = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP)
    runahead = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP,
                        br_config=mini())

    print(f"{'':14s} {'IPC':>8s} {'MPKI':>8s}")
    print(f"{'TAGE-SC-L':14s} {baseline.ipc:8.3f} {baseline.mpki:8.2f}")
    print(f"{'Mini BR':14s} {runahead.ipc:8.3f} {runahead.mpki:8.2f}")
    mpki_gain = 100 * (baseline.mpki - runahead.mpki) / baseline.mpki
    ipc_gain = 100 * (runahead.ipc - baseline.ipc) / baseline.ipc
    print(f"\nMPKI reduced {mpki_gain:.1f}%, IPC up {ipc_gain:.1f}%\n")

    stats = runahead.runahead.stats
    print("DCE prediction breakdown:")
    for category, fraction in stats.breakdown().items():
        print(f"  {category:10s} {100 * fraction:5.1f}%")

    print("\ninstalled dependence chains:")
    for chain in runahead.runahead.chain_cache.chains():
        print(f"  {chain}")


if __name__ == "__main__":
    main()
