"""Hardware budget study: Core-Only vs Mini vs Big, plus one sweep.

Reproduces the engineering question behind Table 2 / Figure 13 on a single
workload: how much chain-level parallelism (window slots) and chain-cache
capacity do you actually need, and what does each configuration cost in
area and energy?

Run:  python examples/configuration_study.py
"""

from repro import big, core_only, load_benchmark, mini, simulate
from repro.power.area import AreaReport
from repro.power.energy import energy_change_percent

INSTRUCTIONS = 12_000
WARMUP = 6_000
WORKLOAD = "gobmk_06"


def main():
    program = load_benchmark(WORKLOAD)
    baseline = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP)
    print(f"workload {WORKLOAD}: baseline IPC {baseline.ipc:.3f}, "
          f"MPKI {baseline.mpki:.2f}\n")

    print(f"{'config':10s} {'storage':>9s} {'area mm2':>9s} {'MPKI':>7s} "
          f"{'IPC':>7s} {'energy':>8s}")
    for config in (core_only(), mini(), big()):
        result = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP,
                          br_config=config)
        area = AreaReport(config)
        energy = energy_change_percent(baseline, result)
        storage = f"{config.storage_kb():.0f}KB"
        if config.name == "big":
            storage = "unlim"
        print(f"{config.name:10s} {storage:>9s} {area.total_mm2:9.2f} "
              f"{result.mpki:7.2f} {result.ipc:7.3f} {energy:+7.1f}%")

    print("\nwindow-slot sweep (Mini base):")
    for slots in (2, 8, 32, 64, 256):
        config = mini(window_slots=slots)
        result = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP,
                          br_config=config)
        print(f"  window {slots:4d}: MPKI {result.mpki:6.2f}  "
              f"IPC {result.ipc:.3f}")


if __name__ == "__main__":
    main()
