"""The paper's Figure 4 walkthrough: authoring the GO-board scan by hand.

Builds the leela code snippet directly with the ProgramBuilder (the
for-loop over 8 neighbours, the empty-square branch A, and the self-atari
branch B guarded by A), runs Branch Runahead on it, and prints the
artifacts of §3/§4: the disassembly, the extracted chains (with their
<PC, outcome> tags), the guard relation the merge-point predictor learned,
and the resulting accuracy.

Run:  python examples/go_board_scan.py
"""

import numpy as np

from repro import ProgramBuilder, mini, simulate
from repro.core.chain import WILDCARD

BOARD_SIZE = 4096
EMPTY = 2


def build_go_scan():
    rng = np.random.default_rng(2021)
    b = ProgramBuilder("go_board_scan")
    board = b.data("board", [int(v) for v in rng.integers(0, 3, BOARD_SIZE)])
    atari = b.data("atari",
                   [int(v) for v in rng.integers(0, 1 << 12, BOARD_SIZE)])
    offsets = b.data("offsets", [1, -1, 64, -64, 63, 65, -63, -65])

    boardr, atarir, offsr, pos, i, sq, value, temp, work = b.regs(
        "board", "atari", "offs", "pos", "i", "sq", "value", "temp", "work")
    b.movi(boardr, board)
    b.movi(atarir, atari)
    b.movi(offsr, offsets)
    b.movi(pos, 64)
    b.label("outer")                      # for each random position...
    b.movi(i, 0)
    b.label("inner")                      # for (i = 0; i < 8; i++)
    b.ld(temp, base=offsr, index=i)       #   sq = pos + neighbor_offset[i]
    b.add(sq, pos, temp)
    b.andi(sq, sq, BOARD_SIZE - 1)
    b.ld(value, base=boardr, index=sq)    #   if (board[sq] == EMPTY)
    b.cmpi(value, EMPTY)
    b.br("ne", "skip")                    # <-- Branch A
    b.ld(temp, base=atarir, index=sq)     #     if (!board[sq].self_atari())
    b.sari(temp, temp, 8)
    b.andi(temp, temp, 7)
    b.cmpi(temp, 1)
    b.br("gt", "skip")                    # <-- Branch B (guarded by A)
    b.addi(work, work, 1)                 #       do_work()
    b.label("skip")
    b.addi(i, i, 1)
    b.cmpi(i, 8)
    b.br("lt", "inner")
    b.muli(pos, pos, 5)                   # next pseudo-random position
    b.addi(pos, pos, 997)
    b.andi(pos, pos, BOARD_SIZE - 1)
    b.jmp("outer")
    return b.build()


def tag_text(tag):
    pc, outcome = tag
    name = {WILDCARD: "*", 0: "NT", 1: "T"}[outcome]
    return f"<{pc:#x},{name}>"


def main():
    program = build_go_scan()
    print("=== program (Figure 4b analogue) ===")
    print(program.listing())

    result = simulate(program, instructions=24_000, warmup=12_000,
                      br_config=mini())
    system = result.runahead

    print("\n=== extracted dependence chains (Figures 4c/4d) ===")
    for chain in system.chain_cache.chains():
        print(f"\nchain for branch {chain.branch_pc:#x}, "
              f"tag {tag_text(chain.tag)}, "
              f"{chain.length} uops after move elimination, "
              f"terminated by {chain.terminated_by}:")
        for op, timed in zip(chain.exec_uops, chain.timed_flags):
            marker = " " if timed else "x"   # x = eliminated
            print(f"  {marker} {op!r}")

    print("\n=== affector/guard relations learned (§4.4) ===")
    for pc, entry in system.hbt.entries.items():
        if entry.agl:
            guards = ", ".join(f"{g:#x}" for g in sorted(entry.agl))
            print(f"  branch {pc:#x} is affected/guarded by: {guards}")

    print("\n=== outcome ===")
    baseline = simulate(program, instructions=24_000, warmup=12_000)
    print(f"TAGE-SC-L : MPKI {baseline.mpki:6.2f}  IPC {baseline.ipc:.3f}")
    print(f"Mini BR   : MPKI {result.mpki:6.2f}  IPC {result.ipc:.3f}")


if __name__ == "__main__":
    main()
