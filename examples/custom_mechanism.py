"""Building your own fetch-override mechanism on the core's hook protocol.

Branch Runahead attaches to the core through four hooks
(`fetch_prediction`, `on_branch_resolved`, `on_retire`, `end_region`).
The same interface supports any research mechanism that wants to observe
retirement and override fetch-time predictions.  This example implements
two toy mechanisms to show the surface:

* ``OracleOverride`` — a limit study: perfect prediction for the N most
  mispredicted branches (what's the headroom Branch Runahead is chasing?).
* ``LastOutcome`` — predict each branch's last committed outcome (an
  anti-baseline: great on loops, useless on data-dependent branches).

Run:  python examples/custom_mechanism.py
"""

from collections import defaultdict

from repro import load_benchmark, mini, simulate
from repro.emulator.machine import Machine
from repro.memsys.hierarchy import MemoryHierarchy
from repro.predictors.tage_scl import tage_scl_64kb
from repro.uarch.core import CoreModel, RunaheadHooks

WORKLOAD = "gobmk_06"
INSTRUCTIONS = 12_000
WARMUP = 6_000


class OracleOverride(RunaheadHooks):
    """Perfect prediction for a chosen set of branch PCs (limit study)."""

    def __init__(self, oracle_pcs, program):
        self.oracle_pcs = set(oracle_pcs)
        # pre-run the program functionally to know every outcome in order
        machine = Machine(program)
        self._outcomes = defaultdict(list)
        for record in machine.stream(2 * (INSTRUCTIONS + WARMUP)):
            if record.uop.is_cond_branch:
                self._outcomes[record.pc].append(record.taken)
        self._cursor = defaultdict(int)

    def fetch_prediction(self, pc, fetch_cycle, tage_pred):
        outcomes = self._outcomes.get(pc)
        cursor = self._cursor[pc]
        self._cursor[pc] += 1
        if pc in self.oracle_pcs and outcomes and cursor < len(outcomes):
            return outcomes[cursor], "dce"
        return tage_pred, "tage"


class LastOutcome(RunaheadHooks):
    """Predict whatever the branch did last time it retired."""

    def __init__(self):
        self._last = {}

    def fetch_prediction(self, pc, fetch_cycle, tage_pred):
        if pc in self._last:
            return self._last[pc], "dce"
        return tage_pred, "tage"

    def on_retire(self, record, retire_cycle, mispredicted, regs):
        if record.uop.is_cond_branch:
            self._last[record.pc] = record.taken


def run_with_hooks(program, hooks):
    machine = Machine(program)
    core = CoreModel(hierarchy=MemoryHierarchy(),
                     predictor=tage_scl_64kb(), runahead=hooks)
    return core.run(machine.stream(INSTRUCTIONS + WARMUP), warmup=WARMUP)


def main():
    program = load_benchmark(WORKLOAD)
    baseline = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP)
    print(f"{WORKLOAD}: baseline MPKI {baseline.mpki:.2f}, "
          f"IPC {baseline.ipc:.3f}\n")

    hard = baseline.core.hardest_branches(4)
    rows = [
        ("last-outcome", run_with_hooks(program, LastOutcome())),
        ("oracle(top-4 hard)", run_with_hooks(
            program, OracleOverride(hard, program))),
    ]
    runahead = simulate(program, instructions=INSTRUCTIONS, warmup=WARMUP,
                        br_config=mini())
    rows.append(("Mini Branch Runahead", runahead.core))

    print(f"{'mechanism':22s} {'MPKI':>8s} {'IPC':>8s}")
    for name, stats in rows:
        ipc = stats.ipc if hasattr(stats, "ipc") else stats.ipc
        print(f"{name:22s} {stats.mpki:8.2f} {ipc:8.3f}")
    print("\nBranch Runahead approaches the oracle's MPKI on the targeted "
          "branches\nwithout oracle knowledge — by recomputing them.")


if __name__ == "__main__":
    main()
