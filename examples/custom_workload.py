"""Authoring a custom workload and comparing predictors on it.

Shows the full public API surface: write a kernel in the micro-op ISA,
run it through the functional emulator, evaluate a ladder of classic
predictors (always-taken, bimodal, gshare, TAGE-SC-L) trace-style, then
attach Branch Runahead for the full timing comparison.

The kernel is a toy interpreter dispatch loop: a classic source of
data-dependent branches (the opcode test depends on the loaded bytecode).

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import ProgramBuilder, mini, simulate, tage_scl_64kb
from repro.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    compare_predictors,
)


def build_interpreter():
    rng = np.random.default_rng(7)
    b = ProgramBuilder("bytecode_interp")
    code = b.data("code", [int(v) for v in rng.integers(0, 4, 4096)])
    coder, pc_reg, op, acc = b.regs("code", "vpc", "op", "acc")
    b.movi(coder, code)
    b.movi(pc_reg, 0)
    b.movi(acc, 0)
    b.label("dispatch")
    b.ld(op, base=coder, index=pc_reg)   # fetch bytecode
    b.cmpi(op, 0)
    b.br("eq", "op_nop")                 # data-dependent dispatch...
    b.cmpi(op, 1)
    b.br("eq", "op_add")
    b.cmpi(op, 2)
    b.br("eq", "op_sub")
    b.muli(acc, acc, 3)                  # default: op_mul
    b.jmp("next")
    b.label("op_nop")
    b.jmp("next")
    b.label("op_add")
    b.addi(acc, acc, 5)
    b.jmp("next")
    b.label("op_sub")
    b.addi(acc, acc, -2)
    b.label("next")
    b.muli(pc_reg, pc_reg, 5)            # pseudo-random walk over the code
    b.addi(pc_reg, pc_reg, 31)
    b.andi(pc_reg, pc_reg, 4095)
    b.jmp("dispatch")
    return b.build()


def main():
    program = build_interpreter()
    print("trace-driven predictor accuracy on the dispatch branches:")
    scores = compare_predictors(
        program,
        [AlwaysTakenPredictor(), BimodalPredictor(), GSharePredictor(),
         tage_scl_64kb()],
        instructions=30_000)
    for name, score in scores.items():
        print(f"  {name:16s} {100 * score.accuracy:6.2f}%  "
              f"(MPKI {score.mpki:.1f})")

    print("\nfull timing simulation:")
    baseline = simulate(program, instructions=20_000, warmup=10_000)
    runahead = simulate(program, instructions=20_000, warmup=10_000,
                        br_config=mini())
    print(f"  TAGE-SC-L core : IPC {baseline.ipc:.3f}  "
          f"MPKI {baseline.mpki:.2f}")
    print(f"  + Mini BR      : IPC {runahead.ipc:.3f}  "
          f"MPKI {runahead.mpki:.2f}")


if __name__ == "__main__":
    main()
